"""Cross-process trace continuity: one grep reconstructs any flow.

The end-to-end acceptance of the observability-v2 PR, in three parts:

* a supervised ``--jobs 2`` campaign writes one *connected* event log:
  every parent and spawn-worker line carries the same campaign trace
  id, each unit has its dispatch -> unit_start -> unit_done chain, and
  the normalized log is byte-stable across two same-seed runs;
* a SIGKILL'd chaos worker still leaves its ``unit_start`` trail --
  flush-on-failure is structural (one flushed append per event);
* every daemon response carries a unique ``X-Repro-Trace-Id`` that
  appears in the event log, and the load generator records the slowest
  request's id per config row in ``run_table.csv``.
"""

from __future__ import annotations

import csv
import json
import os
from http.client import HTTPConnection

import pytest

from repro.campaign.supervisor import (
    SupervisorPolicy,
    campaign_key,
    run_supervised,
)
from repro.obs import events as events_mod
from repro.obs.events import (
    TRACE_ENV,
    configure_event_log,
    event_context,
    new_trace_id,
    normalized_event,
    read_events,
)
from repro.serve.daemon import ServeApp, ServeDaemon
from repro.serve.loadgen import (
    RUN_TABLE_FIELDS,
    LoadPoint,
    run_loadtest,
)
from repro.util.rngs import RngFactory


def _traced_unit(value: int, seed: int) -> tuple[int, int]:
    """Module-level so spawn attempt processes can pickle it."""
    rng = RngFactory(seed + value).get("test/trace-continuity")
    return value, int(rng.integers(0, 1_000_000))


def _units(n: int, seed: int = 9) -> list[dict]:
    return [dict(value=i, seed=seed) for i in range(n)]


def _policy(journal_dir, **overrides) -> SupervisorPolicy:
    overrides.setdefault("journal_dir", str(journal_dir))
    overrides.setdefault("retries", 1)
    overrides.setdefault("heartbeat_s", 0.2)
    overrides.setdefault("backoff_base_s", 0.01)
    overrides.setdefault("backoff_cap_s", 0.05)
    return SupervisorPolicy(**overrides)


@pytest.fixture(autouse=True)
def _clean_logger():
    configure_event_log(None)
    events_mod._env_checked = False
    os.environ.pop(TRACE_ENV, None)
    yield
    configure_event_log(None)
    events_mod._env_checked = False
    os.environ.pop(TRACE_ENV, None)


def _run_logged_campaign(tmp_path, tag: str, *, jobs: int = 2,
                         n_units: int = 3, **policy_overrides):
    log = tmp_path / f"{tag}.jsonl"
    configure_event_log(log)
    try:
        policy = _policy(tmp_path / f"journal-{tag}", **policy_overrides)
        report = run_supervised(_traced_unit, _units(n_units),
                                policy=policy, jobs=jobs)
    finally:
        configure_event_log(None)
    return report, read_events(log)


class TestCampaignContinuity:
    def test_one_connected_trace_across_processes(self, tmp_path):
        report, events = _run_logged_campaign(tmp_path, "jobs2", jobs=2)
        assert report.accounting.complete

        # Every line -- parent and workers -- carries the campaign id.
        traces = {e["trace_id"] for e in events}
        assert len(traces) == 1
        expected = new_trace_id(
            material=f"campaign/{campaign_key('_traced_unit', _units(3))}/0")
        assert traces == {expected}

        # Cross-process proof: at least the parent plus one spawn worker.
        assert len({e["pid"] for e in events}) >= 2

        names = [e["event"] for e in events]
        assert names[0] == "campaign_begin"
        assert names[-1] == "campaign_end"
        for unit in range(3):
            chain = [e["event"] for e in events if e.get("unit") == unit]
            for expected_event in ("dispatch", "unit_start", "unit_result",
                                   "attempt", "unit_done"):
                assert expected_event in chain, (unit, chain)
            # The worker observed the dispatch before reporting back.
            assert chain.index("dispatch") < chain.index("unit_start") \
                < chain.index("unit_done")

    def test_normalized_log_is_byte_stable_under_seed(self, tmp_path):
        """Two same-seed serial runs must emit identical normalized
        events -- measurement fields (ts, pid, durations) stripped,
        everything else byte-for-byte."""
        _, first = _run_logged_campaign(tmp_path, "stable-a", jobs=1)
        _, second = _run_logged_campaign(tmp_path, "stable-b", jobs=1)
        normalize = [json.dumps(normalized_event(e), sort_keys=True)
                     for e in first]
        repeat = [json.dumps(normalized_event(e), sort_keys=True)
                  for e in second]
        assert normalize == repeat

    def test_sigkilled_worker_leaves_its_trail(self, tmp_path):
        """chaos crash@0 SIGKILLs unit 0's first attempt mid-unit; the
        flushed unit_start must survive, and the retry completes the
        chain under the same trace id."""
        report, events = _run_logged_campaign(tmp_path, "chaos",
                                              jobs=2, chaos="crash@0",
                                              retries=2)
        assert report.accounting.complete
        starts = [e for e in events
                  if e["event"] == "unit_start" and e.get("unit") == 0]
        assert len(starts) >= 2  # the killed attempt and its retry
        assert starts[0]["attempt"] == 0
        crashed = [e for e in events if e["event"] == "attempt"
                   and e.get("unit") == 0 and e["status"] == "crashed"]
        assert crashed, "the crashed attempt was not classified"
        assert len({e["trace_id"] for e in events}) == 1

    def test_ambient_trace_env_is_restored(self, tmp_path):
        os.environ[TRACE_ENV] = "0123456789abcdef"
        _run_logged_campaign(tmp_path, "restore", jobs=1, n_units=1)
        assert os.environ[TRACE_ENV] == "0123456789abcdef"

    def test_campaign_joins_an_ambient_trace(self, tmp_path):
        """A campaign opened inside an existing flow (a CLI invocation,
        a daemon request) adopts that trace instead of minting its own
        -- a streamed analyze runs two phase campaigns and both must
        answer to one grep."""
        log = tmp_path / "ambient.jsonl"
        configure_event_log(log)
        try:
            with event_context("cli", trace_id="feedfacecafebeef"):
                for tag in ("phase1", "phase2"):
                    policy = _policy(tmp_path / f"journal-{tag}")
                    run_supervised(_traced_unit, _units(2, seed=3),
                                   policy=policy, jobs=2)
        finally:
            configure_event_log(None)
        events = read_events(log)
        assert {e["trace_id"] for e in events} == {"feedfacecafebeef"}
        assert [e["event"] for e in events].count("campaign_begin") == 2
        assert len({e["pid"] for e in events}) >= 2


def _request(daemon: ServeDaemon, method: str, path: str, payload=None,
             headers=None):
    connection = HTTPConnection(daemon.host, daemon.port, timeout=120.0)
    try:
        body = None if payload is None \
            else json.dumps(payload).encode("utf-8")
        sent = dict(headers or {})
        if body is not None:
            sent["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=sent)
        response = connection.getresponse()
        data = response.read()
        return response.status, response.getheader("X-Repro-Trace-Id"), data
    finally:
        connection.close()


class TestServeContinuity:
    def test_every_response_joins_the_event_log(self, bundle_dir, tmp_path):
        log = tmp_path / "serve-events.jsonl"
        configure_event_log(log)
        app = ServeApp({"b": bundle_dir})
        daemon = ServeDaemon(app).start_background()
        try:
            seen = []
            for _ in range(2):
                status, trace_id, _ = _request(
                    daemon, "POST", "/analyze", {"bundle": "b"})
                assert status == 200
                seen.append(trace_id)
            status, trace_id, _ = _request(daemon, "GET", "/healthz")
            assert status == 200
            seen.append(trace_id)
        finally:
            daemon.shutdown()
            configure_event_log(None)

        # Unique, well-formed ids on every response.
        assert len(set(seen)) == 3
        for trace_id in seen:
            assert len(trace_id) == 16
            int(trace_id, 16)

        events = read_events(log)
        requests = {e["trace_id"]: e for e in events
                    if e["event"] == "request"}
        for trace_id in seen:
            assert trace_id in requests
        # The cold bundle load happened inside the first request's
        # context -- same trace id, so the slow first hit is explicable
        # from the log alone.
        (load,) = [e for e in events if e["event"] == "bundle_load"]
        assert load["trace_id"] == seen[0]
        # The second identical query was answered from the result cache.
        queries = [e for e in events if e["event"] == "query"]
        assert [q["cached"] for q in queries] == [False, True]

    def test_client_supplied_trace_id_is_echoed(self, bundle_dir):
        app = ServeApp({"b": bundle_dir})
        daemon = ServeDaemon(app).start_background()
        try:
            _, trace_id, _ = _request(
                daemon, "GET", "/healthz",
                headers={"X-Repro-Trace-Id": "cafecafecafecafe"})
        finally:
            daemon.shutdown()
        assert trace_id == "cafecafecafecafe"


class TestLoadgenTraceColumn:
    def test_run_table_records_the_slowest_request_id(self, bundle_dir,
                                                      tmp_path):
        assert RUN_TABLE_FIELDS[-1] == "trace_id"
        out = tmp_path / "run_table.csv"
        rows = run_loadtest({"b": bundle_dir}, [LoadPoint(2, 4)],
                            seed=11, out=out)
        assert all(len(row.trace_id) == 16 for row in rows)
        with open(out, newline="") as handle:
            reader = csv.DictReader(handle)
            assert reader.fieldnames == list(RUN_TABLE_FIELDS)
            table = list(reader)
        assert len(table) == 1
        int(table[0]["trace_id"], 16)
