"""Unit tests for the telemetry subsystem (:mod:`repro.obs`).

Covers the contracts everything else leans on:

* span nesting, ordering, attributes, and the no-op path without an
  active tracer;
* the StageTimer re-entry fix (nested same-name stages must not sum
  overlapping intervals into one key);
* counter/gauge/histogram semantics and the Prometheus exposition;
* merge associativity/commutativity -- the property that makes
  cross-process aggregation order-independent.
"""

from __future__ import annotations

import time

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    scoped_registry,
)
from repro.obs.tracing import (
    MEASUREMENT_KEYS,
    Span,
    Tracer,
    current_tracer,
    normalized_events,
    span,
    tracing,
)
from repro.util.timing import StageTimer


class TestSpans:
    def test_nesting_and_order(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("outer") as outer:
                with span("first"):
                    pass
                with span("second", tag="x"):
                    pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["first", "second"]
        assert root.children[1].attrs == {"tag": "x"}
        assert outer is root

    def test_events_are_dfs_ordered_and_numbered(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("a"):
                with span("b"):
                    with span("c"):
                        pass
                with span("d"):
                    pass
        events = tracer.events()
        assert [e["name"] for e in events] == ["a", "b", "c", "d"]
        assert [e["seq"] for e in events] == [1, 2, 3, 4]
        assert [e["parent"] for e in events] == [None, 1, 2, 1]
        assert [e["depth"] for e in events] == [0, 1, 2, 1]

    def test_durations_measured_and_nested(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("outer"):
                with span("inner"):
                    time.sleep(0.01)
        (root,) = tracer.roots
        (inner,) = root.children
        assert inner.duration_s >= 0.01
        assert root.duration_s >= inner.duration_s
        assert root.self_duration_s <= root.duration_s

    def test_noop_without_tracer(self):
        assert current_tracer() is None
        with span("anything", key="value") as sp:
            sp.set_attrs(more="attrs")  # must not raise
        assert current_tracer() is None

    def test_attach_grafts_worker_tree(self):
        worker = Tracer()
        with tracing(worker):
            with span("unit", index=3):
                with span("analyze"):
                    pass
        (tree,) = worker.tree()

        parent = Tracer()
        with tracing(parent):
            with span("campaign"):
                parent.attach(tree)
        (campaign,) = parent.roots
        (unit,) = campaign.children
        assert unit.name == "unit" and unit.attrs == {"index": 3}
        assert [c.name for c in unit.children] == ["analyze"]

    def test_to_dict_round_trip(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("a", n=1):
                with span("b"):
                    pass
        (tree,) = tracer.tree()
        rebuilt = Span.from_dict(tree)
        assert rebuilt.to_dict() == tree

    def test_normalized_events_strip_measurements(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("a"):
                pass
        (event,) = normalized_events(tracer.events())
        assert not set(MEASUREMENT_KEYS) & set(event)
        assert event["name"] == "a"

    def test_hot_spans_rank_by_self_time(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("hot"):
                time.sleep(0.02)
            with tracer.span("cold"):
                pass
        ranked = tracer.hot_spans(limit=3)
        assert ranked[0][0] == "hot"
        names = [name for name, _, _ in ranked]
        assert names.index("hot") < names.index("cold")


class TestStageTimer:
    def test_accumulates_per_stage(self):
        sink: dict[str, float] = {}
        timer = StageTimer(sink)
        with timer.stage("classify"):
            pass
        with timer.stage("classify"):
            pass
        with timer.stage("filter"):
            pass
        assert set(sink) == {"classify", "filter"}
        assert sink["classify"] >= 0.0

    def test_reentrant_stage_nests_instead_of_double_counting(self):
        sink: dict[str, float] = {}
        timer = StageTimer(sink)
        with timer.stage("x"):
            time.sleep(0.01)
            with timer.stage("x"):
                time.sleep(0.01)
        assert set(sink) == {"x", "x/x"}
        # The outer total is a true wall-clock figure: it contains the
        # inner interval instead of having it summed in on top (the old
        # behaviour collapsed both into one "x" key worth ~3x the sleep).
        assert sink["x/x"] >= 0.01
        assert sink["x"] >= sink["x/x"] + 0.01

    def test_none_sink_is_fine(self):
        with StageTimer(None).stage("anything"):
            pass

    def test_stage_yields_span_under_tracer(self):
        tracer = Tracer()
        sink: dict[str, float] = {}
        with tracing(tracer):
            with StageTimer(sink).stage("classify") as sp:
                sp.set_attrs(records=7)
        (root,) = tracer.roots
        assert root.name == "classify"
        assert root.attrs == {"records": 7}


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", 2, outcome="success")
        registry.counter("runs_total", 3, outcome="success")
        registry.counter("runs_total", outcome="system")
        assert registry.counter_value("runs_total", outcome="success") == 5
        assert registry.counter_value("runs_total", outcome="system") == 1
        assert registry.counter_value("runs_total", outcome="absent") == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x", -1)

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("depth", 3)
        registry.gauge("depth", 2)
        assert registry.gauge_value("depth") == 2

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        for value in (0.0001, 0.003, 0.003, 7.0, 1e9):
            registry.observe("latency_s", value)
        snap = registry.snapshot()
        hist = snap["histograms"]["latency_s"]
        assert hist["count"] == 5
        assert hist["sum"] == pytest.approx(0.0001 + 0.003 + 0.003
                                            + 7.0 + 1e9)
        assert hist["buckets"]["0.001"] == 1
        assert hist["buckets"]["0.005"] == 2
        assert hist["buckets"]["10"] == 1
        assert hist["buckets"]["+Inf"] == 1

    def test_series_labels_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("c", 1, b="2", a="1")
        assert 'c{a="1",b="2"}' in registry.snapshot()["counters"]

    def test_merge_counters_and_histograms_add_gauges_max(self):
        a = MetricsRegistry()
        a.counter("c", 2)
        a.gauge("g", 5)
        a.observe("h", 0.5)
        b = MetricsRegistry()
        b.counter("c", 3)
        b.gauge("g", 1)
        b.observe("h", 9000.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["buckets"]["+Inf"] == 1

    def test_merge_is_order_independent(self):
        def worker(seed: int) -> dict:
            registry = MetricsRegistry()
            registry.counter("units", seed)
            registry.gauge("peak", seed * 10)
            # Quarter steps are binary-exact, so the histogram sum is
            # identical regardless of fold order.
            registry.observe("t", seed / 4)
            return registry.snapshot()

        snapshots = [worker(s) for s in (1, 2, 3, 4)]
        forward = MetricsRegistry()
        for snap in snapshots:
            forward.merge(snap)
        backward = MetricsRegistry()
        for snap in reversed(snapshots):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_identity(self):
        registry = MetricsRegistry()
        registry.counter("c", 7)
        before = registry.snapshot()
        registry.merge(MetricsRegistry().snapshot())
        assert registry.snapshot() == before

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", 4, outcome="success")
        registry.gauge("workers", 2)
        registry.observe("stage_s", 0.002)
        registry.observe("stage_s", 9000.0)
        text = registry.render_prometheus()
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{outcome="success"} 4' in text
        assert "# TYPE workers gauge" in text
        assert "workers 2" in text
        assert "# TYPE stage_s histogram" in text
        # Buckets are cumulative and +Inf carries the total count.
        assert 'stage_s_bucket{le="0.005"} 1' in text
        assert 'stage_s_bucket{le="+Inf"} 2' in text
        assert "stage_s_sum 9000.002" in text
        assert "stage_s_count 2" in text
        assert text.endswith("\n")

    def test_every_family_carries_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("serve_requests_total", endpoint="/healthz")
        registry.counter("made_up_total", 2)
        text = registry.render_prometheus()
        # A known family gets its curated help; an unknown one still
        # gets the HELP/TYPE pair scrapers and linters expect.
        for line in ("# HELP serve_requests_total",
                     "# TYPE serve_requests_total counter",
                     "# HELP made_up_total repro metric made_up_total.",
                     "# TYPE made_up_total counter"):
            assert any(row.startswith(line)
                       for row in text.splitlines()), line
        # Exactly one HELP per family, no matter how many series.
        registry.counter("serve_requests_total", endpoint="/metrics")
        text = registry.render_prometheus()
        assert text.count("# HELP serve_requests_total") == 1

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("quarantined_total", 1,
                         defect='say "hi"\nback\\slash')
        text = registry.render_prometheus()
        assert ('quarantined_total{defect="say \\"hi\\"\\n'
                'back\\\\slash"} 1') in text
        # The exposition still parses line by line: no raw newline
        # splits a sample.
        sample_lines = [line for line in text.splitlines()
                        if line.startswith("quarantined_total{")]
        assert len(sample_lines) == 1

    def test_scoped_registry_isolates_and_restores(self):
        ambient = get_registry()
        with scoped_registry() as inner:
            get_registry().counter("scoped_only", 1)
            assert get_registry() is inner
        assert get_registry() is ambient
        assert inner.counter_value("scoped_only") == 1
        assert ambient.counter_value("scoped_only") == 0
