"""Load generator: determinism, the run-table artifact, and the
warm-serving speedup the daemon exists for.

The generator's promise is that the *load* is never the variable: the
query mix is a pure function of ``(seed, config, worker)``, so two runs
against the same daemon issue identical requests and any change in the
run table is a change in the server.
"""

from __future__ import annotations

import csv
import json
import time
from http.client import HTTPConnection

from repro.cli import main
from repro.serve.daemon import ServeApp, ServeDaemon
from repro.serve.loadgen import (
    RUN_TABLE_FIELDS,
    LoadPoint,
    build_mix,
    cold_cli_seconds,
    percentile,
    run_loadtest,
)


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.00) == 100.0

    def test_small_samples(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([], 0.5) == 0.0
        assert percentile([1.0, 9.0], 0.5) == 1.0


class TestMixDeterminism:
    def test_same_seed_same_plan(self, bundle_dir):
        dirs = {"b": bundle_dir}
        once = build_mix(dirs, seed=7, label="w4xr25", worker=2,
                         requests=50)
        again = build_mix(dirs, seed=7, label="w4xr25", worker=2,
                          requests=50)
        assert once == again

    def test_workers_get_distinct_plans(self, bundle_dir):
        dirs = {"b": bundle_dir}
        plans = [build_mix(dirs, seed=7, label="w4xr25", worker=w,
                           requests=50) for w in range(4)]
        assert len({tuple(plan) for plan in plans}) == 4

    def test_windows_stay_inside_the_collection(self, bundle_dir, bundle):
        from repro.serve.queries import collection_window

        collection = collection_window(bundle)
        plan = build_mix({"b": bundle_dir}, seed=3, label="x", worker=0,
                         requests=200)
        windowed = 0
        for request in plan:
            if request.body is None:
                continue
            payload = json.loads(request.body)
            window = payload.get("window")
            if window is None:
                continue
            windowed += 1
            lo, hi = window
            assert collection.start <= lo < hi <= collection.end
        assert windowed > 20  # the mix actually exercises windowing


class TestRunTable:
    def test_loadtest_emits_the_artifact(self, bundle_dir, tmp_path):
        out = tmp_path / "run_table.csv"
        metrics = tmp_path / "metrics.prom"
        rows = run_loadtest(
            {"b": bundle_dir},
            [LoadPoint(workers=1, requests=4),
             LoadPoint(workers=3, requests=4)],
            seed=11, out=out, metrics_out=metrics)
        with open(out, newline="") as handle:
            records = list(csv.DictReader(handle))
        assert [tuple(r.keys()) for r in records] \
            == [RUN_TABLE_FIELDS] * 2
        assert [r["config"] for r in records] == ["w1xr4", "w3xr4"]
        assert records[0]["total_requests"] == "4"
        assert records[1]["total_requests"] == "12"
        for record, row in zip(records, rows):
            assert record["failure_rate"] == "0.0000"
            assert row.failure_rate == 0.0
            assert float(record["p95_ms"]) >= float(record["p50_ms"])
            assert float(record["throughput_rps"]) > 0
        scrape = metrics.read_text()
        assert "serve_requests_total" in scrape
        assert "serve_latency_seconds_bucket" in scrape

    def test_cli_loadtest_and_p95_gate(self, bundle_dir, tmp_path,
                                       capsys):
        out = tmp_path / "rt.csv"
        code = main(["loadtest", str(bundle_dir), "--workers", "2",
                     "--requests", "3", "--seed", "5",
                     "--out", str(out)])
        assert code == 0
        shown = capsys.readouterr().out
        assert f"run table -> {out}" in shown
        assert out.exists()
        # An absurd gate must flip the exit code (the CI smoke relies
        # on the inverse: a generous gate passing).
        code = main(["loadtest", str(bundle_dir), "--workers", "1",
                     "--requests", "2", "--seed", "5",
                     "--out", str(out), "--p95-gate-ms", "0.000001"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out


class TestWarmServingSpeedup:
    def test_warm_p50_is_10x_faster_than_cold_cli(self,
                                                  midsize_bundle_dir):
        """The acceptance gate: answering a repeated /analyze from the
        warm daemon must beat a cold-process CLI run of the same query
        by at least 10x at the median.  (In practice the margin is
        orders of magnitude -- the warm path is a cache lookup, the cold
        path pays interpreter start, imports, and the bundle read.)"""
        app = ServeApp({"mid": midsize_bundle_dir})
        daemon = ServeDaemon(app).start_background()
        payload = json.dumps({"bundle": "mid"}).encode("utf-8")
        try:
            connection = HTTPConnection(daemon.host, daemon.port,
                                        timeout=600.0)
            try:
                warm_latencies = []
                for attempt in range(13):
                    start = time.perf_counter()
                    connection.request(
                        "POST", "/analyze", body=payload,
                        headers={"Content-Type": "application/json"})
                    response = connection.getresponse()
                    body = response.read()
                    elapsed = time.perf_counter() - start
                    assert response.status == 200
                    if attempt > 0:  # first request pays the load
                        warm_latencies.append(elapsed)
                first_body = body
            finally:
                connection.close()
        finally:
            daemon.shutdown()
        warm_p50 = percentile(sorted(warm_latencies), 0.50)
        cold = cold_cli_seconds(midsize_bundle_dir)
        assert cold >= 10 * warm_p50, (
            f"warm p50 {warm_p50 * 1000:.2f} ms vs cold CLI "
            f"{cold * 1000:.0f} ms: speedup "
            f"{cold / warm_p50:.1f}x < 10x")
        assert json.loads(first_body)["query"]["bundle"] == "mid"
