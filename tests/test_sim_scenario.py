"""Scenario-level tests: the session fixtures plus reproducibility."""


from repro.sim.scenario import paper_scenario, small_scenario
from repro.workload.jobs import Outcome


class TestScenarioConfig:
    def test_small_scenario_builds(self):
        scenario = small_scenario()
        assert scenario.window.duration == 30 * 86400.0

    def test_with_seed(self):
        scenario = small_scenario().with_seed(99)
        assert scenario.seed == 99

    def test_paper_scenario_full_machine(self):
        scenario = paper_scenario(days=1.0)
        assert scenario.blueprint.n_xe == 22640


class TestScenarioRun:
    def test_reproducible(self):
        a = small_scenario(days=10.0, seed=4).run()
        b = small_scenario(days=10.0, seed=4).run()
        assert [(r.apid, r.start, r.end, r.outcome) for r in a.runs] == \
               [(r.apid, r.start, r.end, r.outcome) for r in b.runs]

    def test_seed_matters(self):
        a = small_scenario(days=10.0, seed=4).run()
        b = small_scenario(days=10.0, seed=5).run()
        assert [(r.apid, r.start) for r in a.runs] != \
               [(r.apid, r.start) for r in b.runs]


class TestGroundTruthInvariants:
    """Invariants over the busy session-scoped scenario result."""

    def test_runs_exist(self, sim_result):
        assert len(sim_result.runs) > 200

    def test_all_outcome_kinds_occur(self, sim_result):
        outcomes = {r.outcome for r in sim_result.runs}
        assert Outcome.COMPLETED in outcomes
        assert Outcome.USER_FAILURE in outcomes
        assert Outcome.SYSTEM_FAILURE in outcomes

    def test_time_ordering_within_runs(self, sim_result):
        for run in sim_result.runs:
            assert run.end >= run.start >= 0.0

    def test_system_failures_have_causes(self, sim_result):
        for run in sim_result.runs:
            if run.outcome is Outcome.SYSTEM_FAILURE:
                assert run.cause_category is not None
                assert run.cause_event_id is not None

    def test_cause_events_exist_and_are_fatal(self, sim_result):
        events = {e.event_id: e for e in sim_result.faults.events}
        for run in sim_result.runs:
            if run.outcome is Outcome.SYSTEM_FAILURE:
                event = events[run.cause_event_id]
                assert event.fatal
                assert event.time <= run.end + 1e-6

    def test_completed_runs_not_cut_short(self, sim_result):
        for run in sim_result.runs:
            if run.outcome is Outcome.COMPLETED:
                assert run.elapsed_s > 0

    def test_job_apids_match_runs(self, sim_result):
        run_apids = {r.apid for r in sim_result.runs}
        for job in sim_result.jobs:
            for apid in job.apids:
                assert apid in run_apids

    def test_runs_fit_inside_their_jobs(self, sim_result):
        jobs = {j.job_id: j for j in sim_result.jobs}
        for run in sim_result.runs:
            job = jobs.get(run.job_id)
            if job is None:
                continue
            assert run.start >= job.start_time - 1e-6
            assert run.end <= job.end_time + 1e-6
            assert set(run.node_ids) <= set(job.node_ids)

    def test_node_hours_positive_total(self, sim_result):
        assert sum(r.node_hours for r in sim_result.runs) > 0
