"""Tests for nid-list encoding and the message vocabulary."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LogFormatError
from repro.faults.taxonomy import CATEGORY_SPECS, ErrorCategory
from repro.logs.messages import (
    TEMPLATES,
    classify_message,
    classify_message_by_source,
    render_message,
)
from repro.logs.nids import decode_nids, encode_nids


class TestNids:
    def test_basic_roundtrip(self):
        ids = (0, 1, 2, 3, 7, 9, 10)
        assert decode_nids(encode_nids(ids)) == ids

    def test_empty(self):
        assert encode_nids([]) == ""
        assert decode_nids("") == ()

    def test_single(self):
        assert encode_nids([5]) == "5"

    def test_compactness(self):
        text = encode_nids(range(10000))
        assert text == "0-9999"

    def test_duplicates_collapsed(self):
        assert decode_nids(encode_nids([3, 3, 3])) == (3,)

    def test_unsorted_input(self):
        assert decode_nids(encode_nids([9, 1, 5])) == (1, 5, 9)

    @pytest.mark.parametrize("bad", ["x", "1-", "-3", "5-2", "1,,2", "1-2-3"])
    def test_bad_text_rejected(self, bad):
        with pytest.raises(LogFormatError):
            decode_nids(bad)

    @given(st.sets(st.integers(0, 50000), max_size=200))
    def test_roundtrip_property(self, ids):
        assert set(decode_nids(encode_nids(ids))) == ids


class TestMessages:
    def test_every_category_has_templates(self):
        assert set(TEMPLATES) == set(ErrorCategory)
        assert all(len(templates) >= 2 for templates in TEMPLATES.values())

    @pytest.mark.parametrize("category", list(ErrorCategory))
    def test_classifier_roundtrip_all_kinds(self, category):
        """Every rendered template classifies back to its category."""
        for kind in range(len(TEMPLATES[category])):
            message = render_message(category, kind, "c1-2c0s3n1", salt=kind)
            recovered = classify_message(message)
            assert recovered is category, (
                f"{category} kind {kind}: {message!r} -> {recovered}")

    def test_unrecognized_text_is_none(self):
        assert classify_message("hello world, nothing to see") is None

    def test_render_deterministic(self):
        a = render_message(ErrorCategory.MCE, 0, "c0-0c0s0n0", salt=7)
        b = render_message(ErrorCategory.MCE, 0, "c0-0c0s0n0", salt=7)
        assert a == b

    def test_component_embedded(self):
        message = render_message(ErrorCategory.GPU_DBE, 0, "c9-9c1s2n3a0",
                                 salt=1)
        assert "c9-9c1s2n3a0" in message

    def test_kind_wraps(self):
        # Kind beyond the template list wraps around rather than failing.
        message = render_message(ErrorCategory.MCE, 99, "c0-0c0s0n0", salt=1)
        assert classify_message(message) is ErrorCategory.MCE


class TestStreamClassifier:
    """The stream-dispatched fast path must agree with the global scan
    for every message on the stream the bundle writer routes it to --
    that pair is exactly what :func:`classify_errors` ever asks for."""

    @pytest.mark.parametrize("category", list(ErrorCategory))
    def test_equivalent_on_the_writer_stream(self, category):
        source = CATEGORY_SPECS[category].source
        stream = {"syslog": "syslog", "hwerrlog": "hwerrlog",
                  "console": "console"}.get(source.value, "syslog")
        for kind in range(len(TEMPLATES[category])):
            for salt in range(3):
                message = render_message(category, kind, "c1-2c0s3n1",
                                         salt=salt)
                expected = classify_message(message)
                got = classify_message_by_source(stream, message)
                assert got is expected, (
                    f"{category} kind {kind} via {stream}: "
                    f"{got} != {expected} for {message!r}")

    def test_unknown_source_falls_back(self):
        message = render_message(ErrorCategory.MCE, 0, "c0-0c0s0n0", salt=1)
        assert (classify_message_by_source("weird-stream", message)
                is classify_message(message))
        assert classify_message_by_source("syslog", "nothing here") is None
