"""Tests for application archetypes and samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.machine.nodetypes import NodeType
from repro.workload.apps import DEFAULT_MIX, AppArchetype, archetype_by_name
from repro.workload.distributions import (
    capability_scale,
    sample_capability_walltime,
    sample_runs_per_job,
    sample_scale,
    sample_walltime,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestMix:
    def test_shares_sum_to_one(self):
        assert sum(a.run_share for a in DEFAULT_MIX) == pytest.approx(1.0)

    def test_both_partitions_present(self):
        types = {a.node_type for a in DEFAULT_MIX}
        assert types == {NodeType.XE, NodeType.XK}

    def test_lookup_by_name(self):
        assert archetype_by_name("NAMD").field == "molecular dynamics"

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError):
            archetype_by_name("DOOM")

    def test_some_capability_archetypes(self):
        assert any(a.capability_prob > 0 for a in DEFAULT_MIX)

    def test_ensemble_codes_strong_scale(self):
        """The calibrated mechanism: big ensemble members run shorter."""
        assert archetype_by_name("CHROMA").walltime_scale_exp < 0

    def test_validation_rejects_bad_share(self):
        with pytest.raises(ConfigurationError):
            AppArchetype(name="X", field="f", node_type=NodeType.XE,
                         run_share=0.0, scale_median=8, scale_sigma=1.0,
                         scale_min=1, scale_max=8, capability_prob=0.0,
                         walltime_median_s=60, walltime_sigma=1.0,
                         walltime_scale_exp=0.0, comm_intensity=0.5,
                         io_intensity=0.5, checkpoint_interval_s=0,
                         user_failure_prob=0.0)

    def test_validation_rejects_inverted_scale_bounds(self):
        with pytest.raises(ConfigurationError):
            AppArchetype(name="X", field="f", node_type=NodeType.XE,
                         run_share=0.1, scale_median=8, scale_sigma=1.0,
                         scale_min=10, scale_max=5, capability_prob=0.0,
                         walltime_median_s=60, walltime_sigma=1.0,
                         walltime_scale_exp=0.0, comm_intensity=0.5,
                         io_intensity=0.5, checkpoint_interval_s=0,
                         user_failure_prob=0.0)


class TestScaleSampling:
    def test_within_bounds(self):
        archetype = archetype_by_name("NAMD")
        for seed in range(50):
            n = sample_scale(archetype, rng(seed), partition_size=22640)
            assert archetype.scale_min <= n <= archetype.scale_max

    def test_partition_caps(self):
        archetype = archetype_by_name("NAMD")
        for seed in range(50):
            assert sample_scale(archetype, rng(seed), partition_size=64) <= 64

    def test_capability_near_full_scale(self):
        for seed in range(50):
            n = sample_scale(archetype_by_name("NAMD"), rng(seed),
                             partition_size=22640, capability=True)
            assert n >= 0.4 * 22640

    def test_capability_scale_anchors(self):
        scales = {capability_scale(rng(s), 10000) for s in range(200)}
        assert max(scales) > 9500      # full-machine runs occur
        assert min(scales) >= 4000     # never below 40%

    def test_median_roughly_respected(self):
        archetype = archetype_by_name("CHROMA")
        samples = [sample_scale(archetype, rng(s), 22640) for s in range(400)]
        median = np.median(samples)
        assert archetype.scale_median / 3 < median < archetype.scale_median * 3


class TestWalltimeSampling:
    def test_positive_and_capped(self):
        archetype = archetype_by_name("NAMD")
        for seed in range(100):
            t = sample_walltime(archetype, 256, rng(seed))
            assert 60.0 <= t <= 48 * 3600.0

    def test_strong_scaling_shortens_big_runs(self):
        archetype = archetype_by_name("CHROMA")  # negative exponent
        small = np.median([sample_walltime(archetype, archetype.scale_median,
                                           rng(s)) for s in range(300)])
        big = np.median([sample_walltime(archetype, 8192, rng(s))
                         for s in range(300)])
        assert big < small

    def test_flat_below_median(self):
        archetype = archetype_by_name("CHROMA")
        at_median = np.median([sample_walltime(archetype, 512, rng(s))
                               for s in range(300)])
        below = np.median([sample_walltime(archetype, 8, rng(s))
                           for s in range(300)])
        assert below == pytest.approx(at_median, rel=0.3)

    def test_capability_walltime_grows_with_fraction(self):
        archetype = archetype_by_name("NAMD")
        half = np.median([sample_capability_walltime(archetype, 11000, 22640,
                                                     rng(s))
                          for s in range(300)])
        full = np.median([sample_capability_walltime(archetype, 22640, 22640,
                                                     rng(s))
                          for s in range(300)])
        assert full > 2 * half

    @given(st.integers(1, 22640), st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_capability_walltime_always_valid(self, nodes, seed):
        archetype = archetype_by_name("NAMD")
        t = sample_capability_walltime(archetype, nodes, 22640, rng(seed))
        assert 600.0 <= t <= 48 * 3600.0


class TestRunsPerJob:
    def test_at_least_one(self):
        assert all(sample_runs_per_job(rng(s)) >= 1 for s in range(100))

    def test_mean_matches(self):
        samples = [sample_runs_per_job(rng(s), 1.5) for s in range(2000)]
        assert np.mean(samples) == pytest.approx(2.5, rel=0.1)
