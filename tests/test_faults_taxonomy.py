"""Tests for the error taxonomy."""

import pytest

from repro.faults.taxonomy import (
    CATEGORY_SPECS,
    FAILURE_CLASS_CATEGORIES,
    CategorySpec,
    ErrorCategory,
    EventScope,
    LogSource,
    categories_for_node_type,
)
from repro.machine.nodetypes import NodeType


class TestSpecs:
    def test_every_category_has_a_spec(self):
        assert set(CATEGORY_SPECS) == set(ErrorCategory)

    def test_lethality_in_range(self):
        for spec in CATEGORY_SPECS.values():
            assert 0.0 <= spec.base_lethality <= 1.0

    def test_detection_in_range(self):
        for spec in CATEGORY_SPECS.values():
            for node_type in NodeType:
                assert 0.0 <= spec.detection_for(node_type) <= 1.0

    def test_benign_categories_exist(self):
        benign = {c for c, s in CATEGORY_SPECS.items()
                  if s.base_lethality == 0.0}
        assert ErrorCategory.DRAM_CORRECTABLE in benign
        assert ErrorCategory.HSN_THROTTLE in benign

    def test_failure_class_excludes_benign(self):
        assert ErrorCategory.DRAM_CORRECTABLE not in FAILURE_CLASS_CATEGORIES
        assert ErrorCategory.MCE in FAILURE_CLASS_CATEGORIES

    def test_swo_is_system_scoped_and_certain(self):
        spec = CATEGORY_SPECS[ErrorCategory.SWO]
        assert spec.scope is EventScope.SYSTEM
        assert spec.base_lethality == 1.0
        assert spec.detection_for(NodeType.XE) == 1.0

    def test_xk_detection_gap_encoded(self):
        """The paper's lesson (iii): XK coverage weaker where it matters."""
        for category in (ErrorCategory.MCE, ErrorCategory.KERNEL_PANIC,
                         ErrorCategory.NODE_HEARTBEAT):
            spec = CATEGORY_SPECS[category]
            assert spec.detection_for(NodeType.XK) < spec.detection_for(NodeType.XE)

    def test_gpu_categories_undetectable_on_xe(self):
        for category in (ErrorCategory.GPU_DBE, ErrorCategory.GPU_XID):
            assert CATEGORY_SPECS[category].detection_for(NodeType.XE) == 0.0

    def test_gpu_detection_imperfect_on_xk(self):
        for category in (ErrorCategory.GPU_DBE, ErrorCategory.GPU_XID):
            assert CATEGORY_SPECS[category].detection_for(NodeType.XK) < 0.9

    def test_invalid_lethality_rejected(self):
        with pytest.raises(ValueError):
            CategorySpec(ErrorCategory.MCE, EventScope.NODE, LogSource.HWERR,
                         base_lethality=1.5, detection={NodeType.XE: 1.0},
                         burst_mean=1.0, mean_repair_s=0.0, description="x")

    def test_invalid_detection_rejected(self):
        with pytest.raises(ValueError):
            CategorySpec(ErrorCategory.MCE, EventScope.NODE, LogSource.HWERR,
                         base_lethality=0.5, detection={NodeType.XE: -0.1},
                         burst_mean=1.0, mean_repair_s=0.0, description="x")

    def test_detection_for_falls_back_to_xe(self):
        spec = CategorySpec(ErrorCategory.MCE, EventScope.NODE, LogSource.HWERR,
                            base_lethality=0.5, detection={NodeType.XE: 0.7},
                            burst_mean=1.0, mean_repair_s=0.0, description="x")
        assert spec.detection_for(NodeType.XK) == 0.7


class TestNodeCategories:
    def test_xe_has_no_gpu_categories(self):
        cats = categories_for_node_type(NodeType.XE)
        assert ErrorCategory.GPU_DBE not in cats
        assert ErrorCategory.MCE in cats

    def test_xk_has_gpu_categories(self):
        cats = categories_for_node_type(NodeType.XK)
        assert ErrorCategory.GPU_DBE in cats
        assert ErrorCategory.MCE in cats
