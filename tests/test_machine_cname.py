"""Tests for Cray cname parsing/formatting, including round-trip
property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CNameError
from repro.machine.cname import CName, ComponentKind, format_cname, parse_cname


class TestParse:
    @pytest.mark.parametrize("text,kind", [
        ("c0-0", ComponentKind.CABINET),
        ("c3-7c1", ComponentKind.CHASSIS),
        ("c3-7c1s4", ComponentKind.BLADE),
        ("c3-7c1s4n2", ComponentKind.NODE),
        ("c3-7c1s4g1", ComponentKind.GEMINI),
        ("c3-7c1s4n2a0", ComponentKind.ACCELERATOR),
    ])
    def test_kinds(self, text, kind):
        assert parse_cname(text).kind is kind

    @pytest.mark.parametrize("bad", [
        "", "c", "c1", "c1-", "x3-7", "c3-7c9", "c3-7c1s9", "c3-7c1s4n7",
        "c3-7c1s4g5", "c3-7s4", "c3-7c1s4n2a0x", "nid00123",
    ])
    def test_rejects_garbage(self, bad):
        with pytest.raises(CNameError):
            parse_cname(bad)

    def test_whitespace_tolerated(self):
        assert parse_cname("  c0-0c0s0n0 ").node == 0


class TestInvariants:
    def test_node_and_gemini_exclusive(self):
        with pytest.raises(CNameError):
            CName(0, 0, 0, 0, node=1, gemini=1)

    def test_accelerator_requires_node(self):
        with pytest.raises(CNameError):
            CName(0, 0, 0, 0, accelerator=0)

    def test_gap_in_hierarchy_rejected(self):
        with pytest.raises(CNameError):
            CName(0, 0, chassis=None, slot=3)


class TestNavigation:
    def test_parents_chain(self):
        node = parse_cname("c3-7c1s4n2")
        assert str(node.parent()) == "c3-7c1s4"
        assert str(node.parent().parent()) == "c3-7c1"
        assert str(node.parent().parent().parent()) == "c3-7"
        assert node.parent().parent().parent().parent() is None

    def test_ancestor(self):
        acc = parse_cname("c3-7c1s4n2a0")
        assert acc.ancestor(ComponentKind.CABINET) == CName(3, 7)
        assert str(acc.ancestor(ComponentKind.BLADE)) == "c3-7c1s4"

    def test_ancestor_below_self_rejected(self):
        with pytest.raises(CNameError):
            parse_cname("c3-7").ancestor(ComponentKind.NODE)

    def test_same_blade(self):
        a = parse_cname("c3-7c1s4n0")
        b = parse_cname("c3-7c1s4g1")
        c = parse_cname("c3-7c1s5n0")
        assert a.same_blade(b)
        assert not a.same_blade(c)

    def test_same_cabinet(self):
        assert parse_cname("c3-7c0").same_cabinet(parse_cname("c3-7c2s1n1"))
        assert not parse_cname("c3-7").same_cabinet(parse_cname("c3-8"))


@st.composite
def cnames(draw):
    col = draw(st.integers(0, 31))
    row = draw(st.integers(0, 31))
    depth = draw(st.integers(0, 4))
    chassis = draw(st.integers(0, 2)) if depth >= 1 else None
    slot = draw(st.integers(0, 7)) if depth >= 2 else None
    node = gemini = acc = None
    if depth >= 3:
        if draw(st.booleans()):
            node = draw(st.integers(0, 3))
            if depth >= 4:
                acc = 0
        else:
            gemini = draw(st.integers(0, 1))
    return CName(col, row, chassis, slot, node, gemini, acc)


class TestRoundTrip:
    @given(cnames())
    def test_format_parse_roundtrip(self, cname):
        assert parse_cname(format_cname(cname)) == cname

    @given(cnames())
    def test_str_matches_format(self, cname):
        assert str(cname) == format_cname(cname)

    @given(cnames())
    def test_depth_consistent(self, cname):
        parent = cname.parent()
        if parent is not None:
            assert parent.kind.depth <= cname.kind.depth
