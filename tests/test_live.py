"""Live incremental analysis (``repro.live``): parity and watermarks.

The headline contract is *incremental parity*: once the feed quiesces,
the live engine's finalized result is byte-identical (canonical JSON)
to a one-shot ``analyze`` of the same bundle -- for an in-order feed,
for an out-of-order feed whose disorder stays within the lateness
bound, and regardless of how the arrivals were chopped into
micro-batches.  Beyond the bound, late records must be *counted*,
never silently dropped.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.cli import main
from repro.live.engine import LiveAnalyzer, result_block
from repro.logs.follow import TailFollower
from repro.serve.daemon import ServeApp
from repro.serve.queries import _result_block, analyze_document, document_bytes
from repro.sim.feed import BundleFeed
from repro.sim.scenario import small_scenario

_ERROR_FILES = ("syslog.log", "hwerr.log", "console.log")


@pytest.fixture(scope="module")
def live_result():
    """A small simulation for feed-driven parity cases."""
    return small_scenario(days=20.0, machine_scale=0.05,
                          workload_thinning=0.03, seed=11).run()


def run_feed(result, directory, *, delay_for=None, lateness_s=60.0,
             n_steps=24, watermarks=None):
    """Feed ``result`` into ``directory`` in steps; return the final doc.

    Steps are sized against the simulation *window* (a handful of
    censored runs straggle far beyond it), so each tick delivers a
    meaningful micro-batch; whatever remains after the window is
    drained in one final step.
    """
    feed = BundleFeed(result, directory, seed=1, delay_for=delay_for)
    feed.write_static()
    engine = LiveAnalyzer(directory, lateness_s=lateness_s)
    follower = TailFollower(directory)

    def tick():
        engine.ingest(follower.poll())
        engine.advance()
        if watermarks is not None:
            watermarks.append(engine.released_s)

    t = feed.first_arrival()
    step = (result.window.end - t) / n_steps + 1.0
    while t < result.window.end and not feed.done():
        t += step
        feed.step(t)
        tick()
    feed.drain()
    tick()
    return engine.finalize()


def assert_result_parity(live_doc, directory):
    reference = analyze_document(directory)["result"]
    assert (document_bytes(live_doc["result"])
            == document_bytes(reference))


class TestParity:
    def test_static_catchup_matches_oneshot(self, bundle_dir):
        """Tail-following a finished bundle == analyzing it."""
        engine = LiveAnalyzer(bundle_dir)
        follower = TailFollower(bundle_dir)
        engine.ingest(follower.poll())
        engine.advance()
        doc = engine.finalize()
        assert doc["schema"] == "repro-live/1"
        assert doc["finalized"] is True
        assert doc["watermark"]["late_records_total"] == 0
        assert doc["pending"]["buffered_records"] == 0
        assert doc["pending"]["unsealed_runs"] == 0
        assert_result_parity(doc, bundle_dir)

    def test_incremental_in_order(self, live_result, tmp_path):
        doc = run_feed(live_result, tmp_path / "b")
        assert doc["watermark"]["late_records_total"] == 0
        assert_result_parity(doc, tmp_path / "b")

    def test_disordered_within_lateness_bound(self, live_result, tmp_path):
        """Seeded out-of-order arrivals inside the bound change nothing."""
        rng = random.Random(99)

        def skew(filename, t, i):
            return rng.uniform(0.0, 120.0) if filename in _ERROR_FILES else 0.0

        doc = run_feed(live_result, tmp_path / "b", delay_for=skew,
                       lateness_s=300.0)
        assert doc["watermark"]["late_records_total"] == 0
        assert_result_parity(doc, tmp_path / "b")

    def test_batch_chopping_is_irrelevant(self, live_result, tmp_path):
        """Coarse and fine micro-batching produce identical documents."""
        coarse = run_feed(live_result, tmp_path / "coarse", n_steps=4)
        fine = run_feed(live_result, tmp_path / "fine", n_steps=60)
        assert (document_bytes(coarse["result"])
                == document_bytes(fine["result"]))

    def test_finalize_is_idempotent(self, live_result, tmp_path):
        feed = BundleFeed(live_result, tmp_path / "b", seed=1)
        feed.write_static()
        feed.drain()
        engine = LiveAnalyzer(tmp_path / "b")
        follower = TailFollower(tmp_path / "b")
        engine.ingest(follower.poll())
        first = engine.finalize()
        second = engine.finalize()
        assert document_bytes(first) == document_bytes(second)
        with pytest.raises(RuntimeError):
            engine.ingest(follower.poll())


class TestWatermark:
    def test_watermark_is_monotone(self, live_result, tmp_path):
        marks = []
        run_feed(live_result, tmp_path / "b", watermarks=marks)
        finite = [m for m in marks if m > float("-inf")]
        assert finite, "watermark never advanced"
        assert all(b >= a for a, b in zip(finite, finite[1:]))

    def test_beyond_watermark_late_counted_never_dropped(self, live_result,
                                                         tmp_path):
        """With a tiny lateness bound, wildly-late records are accounted.

        They are excluded from the analysis (which may therefore differ
        from the one-shot ground truth) but stay visible twice over: in
        the per-stream late counters and in the parse accounting, which
        must still equal a one-shot parse of the final file.
        """
        rng = random.Random(5)

        # Skews must dwarf the feed's step size (~0.8 days here) so
        # that late arrivals actually land behind the watermark.
        def skew(filename, t, i):
            return (rng.uniform(0.0, 3 * 86400.0)
                    if filename in _ERROR_FILES else 0.0)

        doc = run_feed(live_result, tmp_path / "b", delay_for=skew,
                       lateness_s=1.0)
        mark = doc["watermark"]
        assert mark["late_records_total"] > 0
        assert mark["late_records"]
        assert sum(mark["late_records"].values()) == \
            mark["late_records_total"]
        assert mark["max_late_lag_s"] > 0
        reference = analyze_document(tmp_path / "b")["result"]
        assert (doc["result"]["ingest"]["parsed"]
                == reference["ingest"]["parsed"])


class TestLayering:
    def test_result_block_mirror_stays_in_sync(self, bundle_dir):
        """``repro.live.engine.result_block`` mirrors the serve one.

        The engine cannot import ``repro.serve`` (the daemon imports the
        engine), so it carries a copy; this pins the two together.
        """
        engine = LiveAnalyzer(bundle_dir)
        engine.ingest(TailFollower(bundle_dir).poll())
        engine.finalize()
        products = engine.products()
        # byte comparison: the summary legitimately contains NaNs,
        # which never compare equal as plain floats
        assert (document_bytes(result_block(products))
                == document_bytes(_result_block(products)))


class TestServeLive:
    def _poll_until_snapshot(self, app, query="", deadline_s=30.0):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            code, _, body = app.handle("GET", "/live", b"", query=query)
            doc = json.loads(body)
            if code == 200 and doc.get("result", {}).get("summary", {}) \
                    .get("runs"):
                return doc
            assert code in (200, 202)
            time.sleep(0.1)
        pytest.fail("live snapshot never became available")

    def test_live_disabled_is_404(self, bundle_dir):
        app = ServeApp({"b": bundle_dir})
        code, _, body = app.handle("GET", "/live", b"")
        assert code == 404
        assert "--live" in json.loads(body)["error"]["message"]

    def test_live_snapshot_and_drain(self, bundle_dir):
        app = ServeApp({"b": bundle_dir}, live=True, live_interval_s=0.05)
        try:
            doc = self._poll_until_snapshot(app)
            assert doc["schema"] == "repro-live/1"
            assert doc["bundle"] == "b"
            assert doc["finalized"] is False
            assert doc["watermark"]["released_s"] is not None
            assert doc["result"]["summary"]["runs"] > 0
            code, _, _ = app.handle("GET", "/live", b"",
                                    query="bundle=nope")
            assert code == 404
        finally:
            app.begin_drain()
        # The last snapshot stays servable while draining.
        code, _, body = app.handle("GET", "/live", b"")
        assert code == 200
        assert json.loads(body)["bundle"] == "b"

    def test_two_bundles_require_explicit_name(self, bundle_dir):
        app = ServeApp({"x": bundle_dir, "y": bundle_dir}, live=True,
                       live_interval_s=0.05)
        try:
            code, _, body = app.handle("GET", "/live", b"")
            assert code == 400
            doc = self._poll_until_snapshot(app, query="bundle=y")
            assert doc["bundle"] == "y"
        finally:
            app.begin_drain()


class TestFollowCli:
    def test_follow_missing_bundle_times_out(self, tmp_path, capsys):
        code = main(["follow", str(tmp_path / "nope"), "--wait-s", "0.1"])
        assert code == 2
        assert "manifest.json" in capsys.readouterr().err

    def test_follow_catches_up_and_matches_analyze(self, bundle_dir,
                                                   tmp_path, capsys):
        out = tmp_path / "live.json"
        code = main(["follow", str(bundle_dir), "--interval", "0.01",
                     "--idle-ticks", "2", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "final:" in stdout
        live = json.loads(out.read_text())
        assert live["finalized"] is True
        assert_result_parity(live, bundle_dir)
