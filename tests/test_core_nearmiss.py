"""Tests for the near-miss analysis."""

import pytest

from repro.core.nearmiss import near_miss_analysis
from repro.errors import AnalysisError
from repro.faults.taxonomy import ErrorCategory


class TestNearMiss:
    def test_report_shape(self, analysis, bundle):
        report = near_miss_analysis(analysis.diagnosed, analysis.clusters,
                                    bundle, analysis.config)
        assert 0.0 <= report.benign_overlap_share <= 1.0
        for ok, bad in report.by_category.values():
            assert ok >= 0 and bad >= 0

    def test_kill_ratio_bounds(self, analysis, bundle):
        report = near_miss_analysis(analysis.diagnosed, analysis.clusters,
                                    bundle, analysis.config)
        for category in report.by_category:
            assert 0.0 <= report.kill_ratio(category) <= 1.0

    def test_unknown_category_zero(self, analysis, bundle):
        report = near_miss_analysis(analysis.diagnosed, analysis.clusters,
                                    bundle, analysis.config)
        assert report.kill_ratio(ErrorCategory.SWO) >= 0.0  # tolerant lookup

    def test_attributed_failures_counted(self, analysis, bundle):
        """Every diagnosed SYSTEM run with a cluster must appear as a
        failure overlap for its category."""
        report = near_miss_analysis(analysis.diagnosed, analysis.clusters,
                                    bundle, analysis.config)
        from repro.core.categorize import DiagnosedOutcome

        attributed = [d for d in analysis.diagnosed
                      if d.outcome is DiagnosedOutcome.SYSTEM
                      and d.cluster_id is not None]
        if attributed:
            total_failure_overlaps = sum(
                bad for _ok, bad in report.by_category.values())
            assert total_failure_overlaps >= len(attributed) * 0.5

    def test_empty_rejected(self, bundle):
        with pytest.raises(AnalysisError):
            near_miss_analysis([], [], bundle)
