"""Tests for the node allocator."""

import pytest

from repro.errors import SchedulingError
from repro.machine.allocation import NodeAllocator
from repro.machine.blueprints import MachineBlueprint, build_machine
from repro.machine.nodetypes import NodeType


@pytest.fixture
def machine():
    return build_machine(MachineBlueprint(n_xe=64, n_xk=16, n_service=4))


@pytest.fixture
def allocator(machine):
    return NodeAllocator(machine)


class TestAllocate:
    def test_basic_allocation(self, allocator):
        alloc = allocator.allocate(NodeType.XE, 8)
        assert len(alloc) == 8
        assert allocator.available(NodeType.XE) == 56

    def test_packing_order(self, allocator):
        alloc = allocator.allocate(NodeType.XE, 8)
        assert list(alloc.node_ids) == sorted(alloc.node_ids)
        # First allocation takes the lowest ids (blade-contiguous).
        assert alloc.node_ids[0] == min(
            allocator.machine.node_ids(NodeType.XE))

    def test_oversubscription_rejected(self, allocator):
        with pytest.raises(SchedulingError):
            allocator.allocate(NodeType.XE, 65)

    def test_zero_rejected(self, allocator):
        with pytest.raises(SchedulingError):
            allocator.allocate(NodeType.XE, 0)

    def test_partitions_independent(self, allocator):
        allocator.allocate(NodeType.XE, 64)
        alloc = allocator.allocate(NodeType.XK, 16)
        assert len(alloc) == 16

    def test_release_returns_nodes(self, allocator):
        alloc = allocator.allocate(NodeType.XE, 10)
        allocator.release(alloc)
        assert allocator.available(NodeType.XE) == 64

    def test_double_release_rejected(self, allocator):
        alloc = allocator.allocate(NodeType.XE, 2)
        allocator.release(alloc)
        with pytest.raises(SchedulingError):
            allocator.release(alloc)

    def test_in_use_tracking(self, allocator):
        alloc = allocator.allocate(NodeType.XE, 5)
        assert allocator.in_use() == 5
        allocator.release(alloc)
        assert allocator.in_use() == 0


class TestDownNodes:
    def test_mark_down_removes_from_pool(self, allocator):
        free_node = allocator.machine.node_ids(NodeType.XE)[0]
        allocator.mark_down(int(free_node))
        assert allocator.available(NodeType.XE) == 63
        assert allocator.is_down(int(free_node))

    def test_mark_down_idempotent(self, allocator):
        node = int(allocator.machine.node_ids(NodeType.XE)[0])
        allocator.mark_down(node)
        allocator.mark_down(node)
        assert allocator.available(NodeType.XE) == 63

    def test_mark_up_restores(self, allocator):
        node = int(allocator.machine.node_ids(NodeType.XE)[0])
        allocator.mark_down(node)
        allocator.mark_up(node)
        assert allocator.available(NodeType.XE) == 64
        assert not allocator.is_down(node)

    def test_down_while_allocated_stays_out_after_release(self, allocator):
        alloc = allocator.allocate(NodeType.XE, 4)
        victim = alloc.node_ids[0]
        allocator.mark_down(victim)
        allocator.release(alloc)
        assert allocator.available(NodeType.XE) == 63
        allocator.mark_up(victim)
        assert allocator.available(NodeType.XE) == 64

    def test_mark_up_while_allocated_not_freed(self, allocator):
        alloc = allocator.allocate(NodeType.XE, 4)
        victim = alloc.node_ids[0]
        allocator.mark_down(victim)
        allocator.mark_up(victim)
        # Node is allocated: must not re-enter the free pool.
        assert allocator.available(NodeType.XE) == 60

    def test_service_node_down_tolerated(self, allocator):
        service = int(allocator.machine.node_ids(NodeType.SERVICE)[0])
        allocator.mark_down(service)
        allocator.mark_up(service)


class TestExposure:
    def test_small_allocation_small_exposure(self, allocator):
        small = allocator.allocate(NodeType.XE, 4)
        large = allocator.allocate(NodeType.XE, 60)
        assert (allocator.fabric_exposure(small)
                <= allocator.fabric_exposure(large))

    def test_exposure_in_unit_range(self, allocator):
        alloc = allocator.allocate(NodeType.XE, 16)
        assert 0.0 < allocator.fabric_exposure(alloc) <= 1.0
