"""Columnar sidecar (``repro-bundle/2``): exactness, staleness, atomicity.

The sidecar is a pure accelerator, so the contract under test is
*byte-identical products*: every record list, the nodemap (including
insertion order), the lenient ingest report, the shard plan, and every
analysis summary must be equal whether a bundle is read from text or
from memory-mapped columns -- including on corruptor-damaged bundles.
The failure modes under test are the three ways a sidecar can lie:
going stale behind edited text, surviving a torn write, and masking
quarantined lines from a strict reader.
"""

from __future__ import annotations

import math
import os
import shutil
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.cache import configure_cache
from repro.cli import main
from repro.core import LogDiver
from repro.core.sharding import analyze_streamed
from repro.errors import LogFormatError
from repro.faults.corruptor import CorruptionConfig, corrupt_bundle
from repro.logs.bundle import (
    index_bundle_shards,
    read_bundle,
    read_manifest,
    sniff_time_range,
)
from repro.logs.columnar import (
    COLUMNAR_FORMAT,
    SIDECAR_DIR,
    convert_bundle,
    invalidate_sidecar,
    load_sidecar,
    set_columnar_enabled,
    usable_sidecar,
    verify_sidecar,
)
from repro.sim.scenario import small_scenario

_FOOTER = "columnar.json"


def dicts_equal(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    for key in a:
        va, vb = a[key], b[key]
        both_nan = (isinstance(va, float) and isinstance(vb, float)
                    and math.isnan(va) and math.isnan(vb))
        if not (both_nan or va == vb):
            return False
    return True


def assert_bundles_equal(text, col) -> None:
    """Full-product equality between a text parse and a columnar load."""
    assert col.error_records == text.error_records
    assert col.torque_records == text.torque_records
    assert col.alps_records == text.alps_records
    assert col.nodemap == text.nodemap
    assert list(col.nodemap) == list(text.nodemap)  # insertion order too
    assert col.manifest == text.manifest
    assert col.ingest_report.as_dict() == text.ingest_report.as_dict()
    assert ([(s.source, s.lineno, s.defect, s.line)
             for s in col.ingest_report.samples]
            == [(s.source, s.lineno, s.defect, s.line)
                for s in text.ingest_report.samples])


@pytest.fixture(scope="module")
def text_dir(bundle_dir, tmp_path_factory):
    """Pristine text copy of the session bundle -- never converted."""
    root = tmp_path_factory.mktemp("columnar_text")
    dest = root / "bundle"
    shutil.copytree(bundle_dir, dest)
    return dest


@pytest.fixture(scope="module")
def converted_dir(bundle_dir, tmp_path_factory):
    """Converted copy of the session bundle."""
    root = tmp_path_factory.mktemp("columnar_conv")
    dest = root / "bundle"
    shutil.copytree(bundle_dir, dest)
    convert_bundle(str(dest))
    return dest


@pytest.fixture(scope="module")
def corrupt_text_dir(text_dir, tmp_path_factory):
    dest = tmp_path_factory.mktemp("columnar_corrupt") / "bundle"
    corrupt_bundle(text_dir, dest, CorruptionConfig.uniform(0.01), seed=7)
    return dest


@pytest.fixture(scope="module")
def corrupt_converted_dir(corrupt_text_dir, tmp_path_factory):
    dest = tmp_path_factory.mktemp("columnar_corrupt_conv") / "bundle"
    shutil.copytree(corrupt_text_dir, dest)
    convert_bundle(str(dest), strict=False)
    return dest


@pytest.fixture(scope="module")
def tiny_text_dir(tmp_path_factory):
    """A small bundle the hypothesis sweep can corrupt+convert quickly."""
    from repro.logs.bundle import write_bundle
    result = small_scenario(days=8.0, machine_scale=0.05,
                            workload_thinning=0.01, seed=77).run()
    dest = tmp_path_factory.mktemp("columnar_tiny") / "bundle"
    write_bundle(result, dest, seed=1)
    return dest


class TestRoundTrip:
    def test_sidecar_is_usable_and_versioned(self, converted_dir):
        sidecar = usable_sidecar(str(converted_dir))
        assert sidecar is not None
        assert sidecar.footer["format"] == COLUMNAR_FORMAT
        assert sidecar.fresh()

    def test_bundle_products_identical(self, text_dir, converted_dir):
        text = read_bundle(text_dir, columnar=False)
        col = read_bundle(converted_dir)
        assert_bundles_equal(text, col)

    def test_analysis_identical(self, text_dir, converted_dir):
        mem = LogDiver().analyze(read_bundle(text_dir, columnar=False))
        col = LogDiver().analyze(read_bundle(converted_dir))
        assert dicts_equal(mem.summary(), col.summary())
        assert mem.breakdown == col.breakdown
        assert mem.causes == col.causes

    def test_convert_returns_the_parsed_bundle(self, text_dir, tmp_path):
        dest = tmp_path / "bundle"
        shutil.copytree(text_dir, dest)
        converted = convert_bundle(str(dest))
        assert_bundles_equal(read_bundle(text_dir, columnar=False),
                             converted)

    def test_shard_plan_parity(self, text_dir, converted_dir):
        sidecar = usable_sidecar(str(converted_dir))
        _, epoch = read_manifest(text_dir)
        lo, hi = sidecar.time_range()
        assert (lo, hi) == sniff_time_range(text_dir, epoch=epoch)
        for n_shards in (1, 2, 3, 8):
            width = (hi - lo) / n_shards or 1.0
            bounds = tuple(lo + i * width for i in range(n_shards)) + (hi,)
            assert (sidecar.plan_slices(bounds)
                    == index_bundle_shards(text_dir, bounds, epoch=epoch))


class TestLenientParity:
    def test_corrupt_products_identical(self, corrupt_text_dir,
                                        corrupt_converted_dir):
        text = read_bundle(corrupt_text_dir, strict=False, columnar=False)
        assert text.ingest_report.quarantined  # the sweep actually bit
        col = read_bundle(corrupt_converted_dir, strict=False)
        assert_bundles_equal(text, col)

    def test_strict_read_refuses_lenient_sidecar(self,
                                                 corrupt_converted_dir):
        # A sidecar carrying quarantined lines must never satisfy a
        # strict read: the fast path steps aside and the text parser
        # raises exactly as it would without a sidecar.
        sidecar = load_sidecar(str(corrupt_converted_dir))
        assert sidecar is not None and not sidecar.compatible(True)
        with pytest.raises(LogFormatError):
            read_bundle(corrupt_converted_dir, strict=True)

    def test_corrupt_shard_plan_parity(self, corrupt_text_dir,
                                       corrupt_converted_dir):
        sidecar = usable_sidecar(str(corrupt_converted_dir), strict=False)
        _, epoch = read_manifest(corrupt_text_dir)
        lo, hi = sidecar.time_range()
        for n_shards in (2, 5):
            width = (hi - lo) / n_shards
            bounds = tuple(lo + i * width for i in range(n_shards)) + (hi,)
            assert (sidecar.plan_slices(bounds)
                    == index_bundle_shards(corrupt_text_dir, bounds,
                                           epoch=epoch))


class TestStreamedParity:
    def test_clean_streamed_matches_all_paths(self, text_dir,
                                              converted_dir):
        mem = LogDiver().analyze(read_bundle(text_dir, columnar=False))
        st_text = analyze_streamed(text_dir, shards=5, jobs=1)
        st_col = analyze_streamed(converted_dir, shards=5, jobs=1)
        assert dicts_equal(st_col.summary(), st_text.summary())
        assert dicts_equal(st_col.summary(), mem.summary())
        assert st_col.ingest.as_dict() == st_text.ingest.as_dict()

    def test_corrupt_streamed_matches(self, corrupt_text_dir,
                                      corrupt_converted_dir):
        st_text = analyze_streamed(corrupt_text_dir, shards=5, jobs=1,
                                   strict=False, columnar=False)
        st_col = analyze_streamed(corrupt_converted_dir, shards=5, jobs=1,
                                  strict=False)
        assert dicts_equal(st_col.summary(), st_text.summary())
        assert st_col.ingest.as_dict() == st_text.ingest.as_dict()

    def test_streamed_never_rereads_log_bodies(self, converted_dir,
                                               monkeypatch):
        # Satellite bugfix regression: with a sidecar, the second (and
        # any) streamed analyze must plan shards and feed workers from
        # stored columns alone -- no sniffing, no byte indexing, no
        # line iteration over the text logs.
        import repro.core.sharding as sharding
        import repro.logs.bundle as bundle_mod

        def boom(*a, **k):
            raise AssertionError("text log bodies were re-read")

        monkeypatch.setattr(sharding, "index_bundle_shards", boom)
        monkeypatch.setattr(sharding, "sniff_time_range", boom)
        monkeypatch.setattr(sharding, "iter_slice_lines", boom)
        monkeypatch.setattr(bundle_mod, "_index_file", boom)
        streamed = analyze_streamed(converted_dir, shards=4, jobs=1)
        assert streamed.n_runs > 0

    def test_streamed_requires_live_sidecar(self, converted_dir,
                                            tmp_path):
        # If the sidecar vanishes *mid-analysis* the worker must fail
        # loudly, not silently fall back against a columnar plan.
        from repro.core.sharding import _worker_sidecar
        from repro.errors import AnalysisError
        dest = tmp_path / "bundle"
        shutil.copytree(converted_dir, dest)
        invalidate_sidecar(str(dest))
        with pytest.raises(AnalysisError):
            _worker_sidecar(str(dest), True)


class TestStaleness:
    def _copy(self, src, tmp_path):
        dest = tmp_path / "bundle"
        shutil.copytree(src, dest)
        return dest

    def test_edited_text_invalidates_sidecar(self, converted_dir,
                                             tmp_path):
        dest = self._copy(converted_dir, tmp_path)
        with open(dest / "console.log", "a") as handle:
            handle.write("this is not a valid console line\n")
        assert usable_sidecar(str(dest)) is None

    def test_stale_read_falls_back_and_rewrites(self, converted_dir,
                                                tmp_path):
        dest = self._copy(converted_dir, tmp_path)
        before = read_bundle(dest)
        # Append a parseable line: the sidecar is now stale, so the read
        # must reparse the text (seeing the new record) and refresh the
        # sidecar in place.
        last = before.error_records[-1]
        _, epoch = read_manifest(dest)
        stamp = epoch.format_iso(last.time_s + 1.0)
        with open(dest / "hwerr.log", "a") as handle:
            handle.write(f"{stamp}|{last.component}|appended hwerr line\n")
        after = read_bundle(dest)
        assert len(after.error_records) == len(before.error_records) + 1
        refreshed = usable_sidecar(str(dest))
        assert refreshed is not None and refreshed.fresh()
        # and the refreshed sidecar serves the appended record
        again = read_bundle(dest)
        assert again.error_records == after.error_records

    def test_removed_file_invalidates_sidecar(self, converted_dir,
                                              tmp_path):
        dest = self._copy(converted_dir, tmp_path)
        (dest / "console.log").unlink()
        assert usable_sidecar(str(dest)) is None

    def test_same_size_mtime_preserving_rewrite(self, converted_dir,
                                                tmp_path):
        # Regression: the stat shortcut treats an unchanged
        # (size, mtime_ns) pair as fresh without digesting, so a
        # same-size rewrite that restores the mtime (copy-back restore,
        # writer re-filling a rotated file) served stale columns.  The
        # verify path must catch it, and verify_sidecar must invalidate.
        dest = self._copy(converted_dir, tmp_path)
        path = dest / "console.log"
        stat = path.stat()
        data = path.read_bytes()
        mutated = data.replace(b"0", b"1", 1)
        assert mutated != data and len(mutated) == len(data)
        path.write_bytes(mutated)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        blind = usable_sidecar(str(dest))
        assert blind is not None        # the stat shortcut is fooled
        assert not blind.fresh(verify=True)
        assert usable_sidecar(str(dest), verify=True) is None
        assert verify_sidecar(str(dest)) is False
        assert load_sidecar(str(dest)) is None  # invalidated on disk
        # idempotent once the sidecar is gone
        assert verify_sidecar(str(dest)) is True


class TestTornWrites:
    def _copy(self, src, tmp_path):
        dest = tmp_path / "bundle"
        shutil.copytree(src, dest)
        return dest

    def test_missing_footer_is_invisible(self, text_dir, converted_dir,
                                         tmp_path):
        dest = self._copy(converted_dir, tmp_path)
        (dest / SIDECAR_DIR / _FOOTER).unlink()
        assert load_sidecar(str(dest)) is None
        assert_bundles_equal(read_bundle(text_dir, columnar=False),
                             read_bundle(dest))

    def test_truncated_footer_is_invisible(self, text_dir, converted_dir,
                                           tmp_path):
        dest = self._copy(converted_dir, tmp_path)
        footer = dest / SIDECAR_DIR / _FOOTER
        footer.write_bytes(footer.read_bytes()[: 40])
        assert load_sidecar(str(dest)) is None
        assert_bundles_equal(read_bundle(text_dir, columnar=False),
                             read_bundle(dest))

    def test_missing_column_is_invisible(self, text_dir, converted_dir,
                                         tmp_path):
        dest = self._copy(converted_dir, tmp_path)
        victim = sorted((dest / SIDECAR_DIR).glob("*.npy"))[0]
        victim.unlink()
        assert load_sidecar(str(dest)) is None
        assert_bundles_equal(read_bundle(text_dir, columnar=False),
                             read_bundle(dest))

    def test_truncated_column_falls_back(self, text_dir, converted_dir,
                                         tmp_path):
        # Footer intact, one column torn: loading must fail safe into
        # the text parser, never crash or return partial data.
        dest = self._copy(converted_dir, tmp_path)
        victim = sorted((dest / SIDECAR_DIR).glob("*.npy"))[0]
        victim.write_bytes(victim.read_bytes()[: 16])
        assert_bundles_equal(read_bundle(text_dir, columnar=False),
                             read_bundle(dest))

    def test_sigkill_mid_convert_leaves_loadable_bundle(self, tiny_text_dir,
                                                        tmp_path):
        dest = self._copy(tiny_text_dir, tmp_path)
        src_root = os.path.join(os.path.dirname(__file__), "..", "src")
        code = ("import sys; from repro.logs.columnar import convert_bundle;"
                f" convert_bundle({str(dest)!r})")
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": src_root})
        # Kill as soon as the converter starts laying down column files.
        deadline = time.time() + 60.0
        sidecar_dir = dest / SIDECAR_DIR
        while time.time() < deadline and proc.poll() is None:
            if sidecar_dir.exists():
                break
            time.sleep(0.001)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        # Whatever instant the kill landed, the bundle stays readable
        # and exact: either the footer never appeared (torn write is
        # invisible) or the convert completed (sidecar is whole).
        expected = read_bundle(tiny_text_dir, columnar=False)
        assert_bundles_equal(expected, read_bundle(dest))


class TestPropertySweep:
    @given(rate=st.sampled_from([0.0, 0.005, 0.02, 0.05]),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_corrupt_convert_roundtrip(self, tiny_text_dir, tmp_path_factory,
                                       rate, seed):
        root = tmp_path_factory.mktemp("colprop")
        damaged = root / "damaged"
        corrupt_bundle(tiny_text_dir, damaged,
                       CorruptionConfig.uniform(rate), seed=seed)
        text = read_bundle(damaged, strict=False, columnar=False)
        converted = root / "converted"
        shutil.copytree(damaged, converted)
        convert_bundle(str(converted), strict=False)
        col = read_bundle(converted, strict=False)
        assert_bundles_equal(text, col)
        assert dicts_equal(LogDiver().analyze(col).summary(),
                           LogDiver().analyze(text).summary())


class TestCli:
    def test_convert_then_up_to_date_then_force(self, tiny_text_dir,
                                                tmp_path, capsys):
        dest = tmp_path / "bundle"
        shutil.copytree(tiny_text_dir, dest)
        assert main(["convert", str(dest)]) == 0
        assert "converted" in capsys.readouterr().out
        assert main(["convert", str(dest)]) == 0
        assert "up to date" in capsys.readouterr().out
        assert main(["convert", str(dest), "--force"]) == 0
        assert "converted" in capsys.readouterr().out

    def test_convert_lenient_renders_report(self, corrupt_text_dir,
                                            tmp_path, capsys):
        dest = tmp_path / "bundle"
        shutil.copytree(corrupt_text_dir, dest)
        assert main(["convert", str(dest), "--lenient"]) == 0
        out = capsys.readouterr().out
        assert "converted" in out and "quarantined" in out

    def test_analyze_no_columnar_forces_text(self, converted_dir,
                                             capsys, monkeypatch):
        try:
            code = main(["analyze", str(converted_dir), "--tables",
                         "outcomes", "--no-columnar"])
        finally:
            set_columnar_enabled(True)
        assert code == 0
        assert "system-failure share" in capsys.readouterr().out

    def test_analyze_agrees_with_and_without_sidecar(self, text_dir,
                                                     converted_dir, capsys):
        assert main(["analyze", str(converted_dir), "--tables",
                     "outcomes,causes"]) == 0
        with_sidecar = capsys.readouterr().out
        assert main(["analyze", str(text_dir), "--tables",
                     "outcomes,causes"]) == 0
        # identical bytes, paper tables included
        assert capsys.readouterr().out == with_sidecar


class TestAmbientBundlePreset:
    def test_persists_sidecar_not_pickle(self, tmp_path):
        from repro.campaign.cache import get_cache
        from repro.experiments import presets

        previous_dir = get_cache().directory
        previous_enabled = get_cache().enabled
        cache = configure_cache(directory=tmp_path, enabled=True)
        presets.clear_memo()
        try:
            first = presets.ambient_bundle(days=4.0, thinning=0.002, seed=5)
            assert cache.stats.hits == 0 and cache.stats.misses >= 1
            bundles = list((tmp_path / "bundles").iterdir())
            assert len(bundles) == 1
            assert usable_sidecar(str(bundles[0])) is not None
            # the only pickle on disk is the simulation result -- the
            # bundle itself is never pickled again
            pickles = list((tmp_path / "objects").glob("*.pkl"))
            assert len(pickles) == 1

            presets.clear_memo()
            hits_before = cache.stats.hits
            warm = presets.ambient_bundle(days=4.0, thinning=0.002, seed=5)
            assert cache.stats.hits == hits_before + 1
            assert warm.error_records == first.error_records
            assert warm.torque_records == first.torque_records
            assert warm.alps_records == first.alps_records
            assert warm.nodemap == first.nodemap
        finally:
            presets.clear_memo()
            configure_cache(directory=previous_dir,
                            enabled=previous_enabled)
