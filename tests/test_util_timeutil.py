"""Tests for repro.util.timeutil."""

from datetime import datetime, timezone

import pytest

from repro.util.timeutil import (
    DAY,
    HOUR,
    PAPER_WINDOW_SECONDS,
    Epoch,
    format_duration,
    seconds_to_node_hours,
)


class TestEpoch:
    def test_roundtrip_datetime(self):
        epoch = Epoch()
        assert epoch.to_seconds(epoch.to_datetime(12345.5)) == 12345.5

    def test_default_epoch_is_utc_2013(self):
        epoch = Epoch()
        moment = epoch.to_datetime(0.0)
        assert moment.year == 2013
        assert moment.tzinfo is not None

    def test_naive_epoch_rejected(self):
        with pytest.raises(ValueError):
            Epoch(start=datetime(2013, 4, 1))

    def test_custom_epoch(self):
        start = datetime(2020, 1, 1, tzinfo=timezone.utc)
        epoch = Epoch(start=start)
        assert epoch.to_datetime(DAY).day == 2

    def test_format_iso_roundtrip(self):
        epoch = Epoch()
        for seconds in (0.0, 3600.0, 86399.0, 40 * DAY):
            assert epoch.parse_iso(epoch.format_iso(seconds)) == seconds

    def test_format_torque_roundtrip(self):
        epoch = Epoch()
        for seconds in (0.0, 12 * HOUR, 517 * DAY):
            assert epoch.parse_torque(epoch.format_torque(seconds)) == seconds

    def test_format_syslog_shape(self):
        text = Epoch().format_syslog(0.0)
        assert text == "Apr  1 00:00:00"

    def test_syslog_single_digit_day_padding(self):
        # Day 1..9 renders with a leading space (RFC3164).
        text = Epoch().format_syslog(2 * DAY)
        assert text.startswith("Apr  3")

    def test_parse_syslog_roundtrip(self):
        epoch = Epoch()
        for seconds in (0.0, 90061.0, 200 * DAY + 3661):
            text = epoch.format_syslog(seconds)
            assert epoch.parse_syslog(text) == seconds

    def test_parse_syslog_year_rollover(self):
        epoch = Epoch()
        # 300 days after 2013-04-01 is January 2014; without a year hint
        # the parser must land after the epoch, not 90 days before it.
        seconds = 300 * DAY
        text = epoch.format_syslog(seconds)
        assert epoch.parse_syslog(text) == seconds


class TestHelpers:
    def test_seconds_to_node_hours(self):
        assert seconds_to_node_hours(3600.0, 10) == 10.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_node_hours(-1.0, 1)

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_node_hours(1.0, -1)

    def test_format_duration_clock(self):
        assert format_duration(602) == "00:10:02"

    def test_format_duration_days(self):
        assert format_duration(2 * DAY + 3 * HOUR + 4 * 60 + 5) == "2d 03:04:05"

    def test_format_duration_negative(self):
        assert format_duration(-60) == "-00:01:00"

    def test_paper_window(self):
        assert PAPER_WINDOW_SECONDS == 518 * DAY
