"""Tests for job/run records, the workload generator, scheduler queue,
and checkpoint accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.allocation import NodeAllocator
from repro.machine.blueprints import MachineBlueprint, build_machine
from repro.machine.nodetypes import NodeType
from repro.util.intervals import Interval
from repro.util.timeutil import DAY
from repro.workload.checkpoint import lost_work_s, preserved_work_s
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.jobs import AppRunPlan, AppRunRecord, JobPlan, Outcome
from repro.workload.scheduler import FcfsQueue

PARTITIONS = {NodeType.XE: 22640, NodeType.XK: 4224}


def make_generator(seed=0, **kwargs):
    config = WorkloadConfig(**kwargs) if kwargs else WorkloadConfig()
    return WorkloadGenerator(config, PARTITIONS, seed=seed)


class TestConfig:
    def test_default_valid(self):
        WorkloadConfig()

    def test_thinned_scales_rate(self):
        thin = WorkloadConfig().thinned(0.1)
        assert thin.jobs_per_day == pytest.approx(386.0)

    def test_thinned_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig().thinned(0.0)

    def test_bad_mix_rejected(self):
        from repro.workload.apps import DEFAULT_MIX
        with pytest.raises(ConfigurationError):
            WorkloadConfig(mix=DEFAULT_MIX[:3])  # shares don't sum to 1

    def test_missing_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(WorkloadConfig(), {NodeType.XE: 100})


class TestGenerate:
    @pytest.fixture(scope="class")
    def plans(self):
        return make_generator(seed=3).generate(Interval(0, 7 * DAY))

    def test_volume_close_to_expected(self, plans):
        expected = WorkloadConfig().jobs_per_day * 7
        assert abs(len(plans) - expected) < 0.1 * expected

    def test_submit_times_sorted_inside_window(self, plans):
        times = [p.submit_time for p in plans]
        assert times == sorted(times)
        assert all(0 <= t < 7 * DAY for t in times)

    def test_job_ids_unique(self, plans):
        ids = [p.job_id for p in plans]
        assert len(set(ids)) == len(ids)

    def test_nodes_within_partition(self, plans):
        for plan in plans:
            assert 1 <= plan.nodes <= PARTITIONS[plan.node_type]

    def test_every_job_has_runs(self, plans):
        assert all(plan.runs for plan in plans)

    def test_walltime_positive(self, plans):
        assert all(plan.walltime_s > 0 for plan in plans)

    def test_some_underestimates(self, plans):
        """A few percent of jobs request less walltime than their work."""
        under = [p for p in plans
                 if p.walltime_s < sum(r.natural_duration_s for r in p.runs)]
        frac = len(under) / len(plans)
        assert 0.01 < frac < 0.15

    def test_both_partitions_used(self, plans):
        types = {p.node_type for p in plans}
        assert types == {NodeType.XE, NodeType.XK}

    def test_deterministic(self):
        a = make_generator(seed=3).generate(Interval(0, DAY))
        b = make_generator(seed=3).generate(Interval(0, DAY))
        assert [(p.submit_time, p.nodes) for p in a] == \
               [(p.submit_time, p.nodes) for p in b]

    def test_capability_jobs_single_run(self):
        plans = make_generator(seed=5).generate(Interval(0, 30 * DAY))
        # XE body scale is capped at 10k nodes, so any XE job above half
        # the partition is a hero job.
        heroes = [p for p in plans if p.node_type is NodeType.XE
                  and p.nodes >= 0.5 * PARTITIONS[NodeType.XE]]
        assert heroes, "30 days should include XE capability jobs"
        assert all(len(p.runs) == 1 for p in heroes)

    def test_expected_runs_estimate(self):
        generator = make_generator()
        estimate = generator.expected_runs(Interval(0, 30 * DAY))
        plans = generator.generate(Interval(0, 30 * DAY))
        actual = sum(len(p.runs) for p in plans)
        assert abs(actual - estimate) < 0.2 * estimate


class TestRecords:
    def test_job_plan_validation(self):
        with pytest.raises(ValueError):
            JobPlan(job_id=1, user="u", submit_time=0.0,
                    node_type=NodeType.XE, nodes=0, walltime_s=60,
                    runs=(AppRunPlan("x", 60.0, False),))

    def test_job_plan_needs_runs(self):
        with pytest.raises(ValueError):
            JobPlan(job_id=1, user="u", submit_time=0.0,
                    node_type=NodeType.XE, nodes=1, walltime_s=60, runs=())

    def test_run_record_node_hours(self):
        record = AppRunRecord(apid=1, job_id=1, app_name="x",
                              node_type=NodeType.XE, node_ids=(0, 1, 2, 3),
                              start=0.0, end=3600.0,
                              outcome=Outcome.COMPLETED, exit_code=0)
        assert record.node_hours == 4.0
        assert record.lost_node_hours == 0.0

    def test_run_record_lost_hours_with_checkpoint(self):
        record = AppRunRecord(apid=1, job_id=1, app_name="x",
                              node_type=NodeType.XE, node_ids=(0, 1),
                              start=0.0, end=7200.0,
                              outcome=Outcome.SYSTEM_FAILURE, exit_code=137,
                              checkpointed_s=3600.0)
        assert record.lost_node_hours == pytest.approx(2.0)

    def test_outcome_flags(self):
        assert Outcome.SYSTEM_FAILURE.is_failure
        assert Outcome.SYSTEM_FAILURE.is_system_caused
        assert Outcome.USER_FAILURE.is_failure
        assert not Outcome.USER_FAILURE.is_system_caused
        assert not Outcome.COMPLETED.is_failure


class TestCheckpointAccounting:
    def test_preserved_multiples(self):
        assert preserved_work_s(3700.0, 3600.0) == 3600.0
        assert preserved_work_s(7300.0, 3600.0) == 7200.0

    def test_no_checkpointing(self):
        assert preserved_work_s(7300.0, 0.0) == 0.0

    def test_lost_plus_preserved_is_elapsed(self):
        for elapsed in (0.0, 100.0, 3599.0, 3600.0, 10000.0):
            total = preserved_work_s(elapsed, 3600.0) + lost_work_s(elapsed, 3600.0)
            assert total == pytest.approx(elapsed)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            preserved_work_s(-1.0, 60.0)


class TestFcfsQueue:
    @pytest.fixture
    def setup(self):
        machine = build_machine(MachineBlueprint(n_xe=32, n_xk=8, n_service=0))
        allocator = NodeAllocator(machine)
        return machine, allocator, FcfsQueue(allocator)

    def plan(self, job_id, nodes, node_type=NodeType.XE):
        return JobPlan(job_id=job_id, user="u", submit_time=0.0,
                       node_type=node_type, nodes=nodes, walltime_s=60,
                       runs=(AppRunPlan("x", 30.0, False),))

    def test_startable_when_fits(self, setup):
        _machine, _allocator, queue = setup
        queue.submit(self.plan(1, 8))
        assert queue.startable(NodeType.XE).job_id == 1

    def test_head_of_line_blocks(self, setup):
        _machine, allocator, queue = setup
        allocator.allocate(NodeType.XE, 30)
        queue.submit(self.plan(1, 16))   # does not fit (2 free)
        queue.submit(self.plan(2, 2))    # would fit, but behind the head
        assert queue.startable(NodeType.XE) is None

    def test_oversized_head_clamped_to_capacity(self, setup):
        _machine, _allocator, queue = setup
        queue.submit(self.plan(1, 99999))
        # Fits once clamped to the partition size.
        assert queue.startable(NodeType.XE) is not None

    def test_queued_counts(self, setup):
        _machine, _allocator, queue = setup
        queue.submit(self.plan(1, 4))
        queue.submit(self.plan(2, 4, NodeType.XK))
        assert queue.queued() == 2
        assert queue.queued(NodeType.XK) == 1

    def test_pop_order(self, setup):
        _machine, _allocator, queue = setup
        queue.submit(self.plan(1, 4))
        queue.submit(self.plan(2, 4))
        assert queue.pop(NodeType.XE).job_id == 1
        assert queue.pop(NodeType.XE).job_id == 2
