"""Tests for ingestion: classification and run assembly."""

import pytest

from repro.core.ingest import assemble_runs, classify_errors
from repro.faults.taxonomy import ErrorCategory
from repro.logs.bundle import LogBundle
from repro.logs.records import AlpsRecord, ErrorLogRecord, TorqueRecord
from repro.util.timeutil import Epoch


def make_bundle(alps=(), torque=(), errors=(), nodemap=None):
    return LogBundle(directory=None, epoch=Epoch(), manifest={},
                     error_records=list(errors),
                     torque_records=list(torque),
                     alps_records=list(alps),
                     nodemap=nodemap or {})


def alps(apid, kind, t, nids=(0, 1), exit_code=None, exit_signal=None,
         batch="1.bw"):
    return AlpsRecord(time_s=t, kind=kind, apid=apid, batch_id=batch,
                      user="u", cmd="app", nids=tuple(nids),
                      exit_code=exit_code, exit_signal=exit_signal)


NODEMAP = {0: ("c0-0c0s0n0", "XE", 0), 1: ("c0-0c0s0n1", "XE", 0),
           2: ("c0-0c0s0n2", "XK", 1)}


class TestClassify:
    def test_recognized_text(self):
        records = [ErrorLogRecord(10.0, "syslog", "c0-0c0s0n0",
                                  "Kernel panic - not syncing: x")]
        classified, unmatched = classify_errors(make_bundle(errors=records))
        assert unmatched == 0
        assert classified[0].category is ErrorCategory.KERNEL_PANIC

    def test_unrecognized_dropped_and_counted(self):
        records = [ErrorLogRecord(10.0, "syslog", "c0-0c0s0n0", "blah blah")]
        classified, unmatched = classify_errors(make_bundle(errors=records))
        assert classified == []
        assert unmatched == 1

    def test_output_sorted(self):
        records = [
            ErrorLogRecord(20.0, "syslog", "a", "Kernel panic - x"),
            ErrorLogRecord(10.0, "syslog", "b", "Kernel panic - y"),
        ]
        classified, _ = classify_errors(make_bundle(errors=records))
        assert [e.time_s for e in classified] == [10.0, 20.0]


class TestAssembleRuns:
    def test_start_end_paired(self):
        bundle = make_bundle(
            alps=[alps(1, "start", 100.0),
                  alps(1, "end", 4000.0, exit_code=0, exit_signal=0)],
            nodemap=NODEMAP)
        runs = assemble_runs(bundle)
        assert len(runs) == 1
        run = runs[0]
        assert run.start_s == 100.0 and run.end_s == 4000.0
        assert run.exit_code == 0 and not run.launch_error
        assert run.node_type == "XE"
        assert run.gemini_vertices == (0,)

    def test_error_record_is_launch_failure(self):
        bundle = make_bundle(alps=[alps(2, "error", 100.0)], nodemap=NODEMAP)
        runs = assemble_runs(bundle)
        assert runs[0].launch_error
        assert runs[0].elapsed_s == 0.0

    def test_start_without_end_censored_out(self):
        bundle = make_bundle(alps=[alps(3, "start", 100.0)], nodemap=NODEMAP)
        assert assemble_runs(bundle) == []

    def test_end_without_start_kept(self):
        bundle = make_bundle(
            alps=[alps(4, "end", 900.0, exit_code=0, exit_signal=0)],
            nodemap=NODEMAP)
        runs = assemble_runs(bundle)
        assert len(runs) == 1
        assert runs[0].elapsed_s == 0.0

    def test_user_joined_from_torque(self):
        torque = TorqueRecord(time_s=0.0, kind="S", job_id="1.bw",
                              user="alice", queue="normal", nodes=2,
                              exec_host_nids=(0, 1), start_s=0.0, end_s=None,
                              walltime_req_s=3600.0, exit_status=None)
        bundle = make_bundle(
            alps=[alps(1, "start", 10.0),
                  alps(1, "end", 20.0, exit_code=0, exit_signal=0)],
            torque=[torque], nodemap=NODEMAP)
        assert assemble_runs(bundle)[0].user == "alice"

    def test_majority_node_type(self):
        bundle = make_bundle(
            alps=[alps(1, "start", 10.0, nids=(0, 1, 2)),
                  alps(1, "end", 20.0, nids=(0, 1, 2), exit_code=0,
                       exit_signal=0)],
            nodemap=NODEMAP)
        assert assemble_runs(bundle)[0].node_type == "XE"

    def test_unknown_nids_tolerated(self):
        bundle = make_bundle(
            alps=[alps(1, "start", 10.0, nids=(99,)),
                  alps(1, "end", 20.0, nids=(99,), exit_code=0,
                       exit_signal=0)],
            nodemap=NODEMAP)
        run = assemble_runs(bundle)[0]
        assert run.node_type == "?"

    def test_node_hours(self):
        bundle = make_bundle(
            alps=[alps(1, "start", 0.0),
                  alps(1, "end", 7200.0, exit_code=0, exit_signal=0)],
            nodemap=NODEMAP)
        assert assemble_runs(bundle)[0].node_hours == pytest.approx(4.0)


class TestAgainstSessionBundle:
    def test_every_simulated_completed_run_assembled(self, sim_result, bundle):
        from repro.workload.jobs import Outcome

        runs = assemble_runs(bundle)
        by_apid = {r.apid: r for r in runs}
        for truth in sim_result.runs:
            assert truth.apid in by_apid
            view = by_apid[truth.apid]
            assert view.nodes == truth.nodes
            assert view.start_s == pytest.approx(truth.start, abs=1.0)
            assert view.end_s == pytest.approx(truth.end, abs=1.0)
            assert view.launch_error == (truth.outcome is Outcome.LAUNCH_FAILURE)

    def test_node_types_recovered(self, sim_result, bundle):
        runs = assemble_runs(bundle)
        truth = {r.apid: r.node_type.value for r in sim_result.runs}
        for view in runs:
            assert view.node_type == truth[view.apid]
