"""Tests for the command-line interface (in-process, no subprocess)."""

import pytest

from repro.cli import main


class TestSimulateAnalyze:
    @pytest.fixture(scope="class")
    def bundle_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "bundle"
        code = main(["simulate", str(path), "--small", "--days", "20",
                     "--seed", "3"])
        assert code == 0
        return path

    def test_simulate_writes_bundle(self, bundle_path):
        assert (bundle_path / "manifest.json").exists()
        assert (bundle_path / "apsys.log").exists()

    def test_analyze_runs(self, bundle_path, capsys):
        code = main(["analyze", str(bundle_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "system-failure share" in out
        assert "outcome" in out

    def test_analyze_selected_tables(self, bundle_path, capsys):
        code = main(["analyze", str(bundle_path), "--tables", "outcomes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "=== outcomes ===" in out
        assert "=== causes ===" not in out

    def test_analyze_unknown_table(self, bundle_path, capsys):
        code = main(["analyze", str(bundle_path), "--tables", "nope"])
        assert code == 2

    def test_baseline_runs(self, bundle_path, capsys):
        code = main(["baseline", str(bundle_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "machine MTBF" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
