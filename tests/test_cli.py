"""Tests for the command-line interface (in-process, no subprocess)."""

import pytest

from repro.cli import main
from repro.faults.corruptor import CorruptionConfig, corrupt_bundle


class TestSimulateAnalyze:
    @pytest.fixture(scope="class")
    def bundle_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "bundle"
        code = main(["simulate", str(path), "--small", "--days", "20",
                     "--seed", "3"])
        assert code == 0
        return path

    def test_simulate_writes_bundle(self, bundle_path):
        assert (bundle_path / "manifest.json").exists()
        assert (bundle_path / "apsys.log").exists()

    def test_analyze_runs(self, bundle_path, capsys):
        code = main(["analyze", str(bundle_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "system-failure share" in out
        assert "outcome" in out

    def test_analyze_selected_tables(self, bundle_path, capsys):
        code = main(["analyze", str(bundle_path), "--tables", "outcomes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "=== outcomes ===" in out
        assert "=== causes ===" not in out

    def test_analyze_unknown_table(self, bundle_path, capsys):
        code = main(["analyze", str(bundle_path), "--tables", "nope"])
        assert code == 2

    def test_baseline_runs(self, bundle_path, capsys):
        code = main(["baseline", str(bundle_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "machine MTBF" in out

    def test_analyze_lenient_survives_corruption(self, bundle_path,
                                                 tmp_path, capsys):
        damaged = tmp_path / "damaged"
        corrupt_bundle(bundle_path, damaged, CorruptionConfig.uniform(0.05),
                       seed=17)
        code = main(["analyze", str(damaged), "--lenient",
                     "--tables", "outcomes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ingest:" in out
        assert "quarantined" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestValidate:
    def test_bad_rates_rejected_early(self, capsys):
        code = main(["validate", "--rates", "nope"])
        assert code == 2
        assert "bad --rates" in capsys.readouterr().out
