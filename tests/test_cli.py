"""Tests for the command-line interface (in-process, no subprocess)."""

import pytest

from repro.cli import main
from repro.faults.corruptor import CorruptionConfig, corrupt_bundle


class TestSimulateAnalyze:
    @pytest.fixture(scope="class")
    def bundle_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "bundle"
        code = main(["simulate", str(path), "--small", "--days", "20",
                     "--seed", "3"])
        assert code == 0
        return path

    def test_simulate_writes_bundle(self, bundle_path):
        assert (bundle_path / "manifest.json").exists()
        assert (bundle_path / "apsys.log").exists()

    def test_analyze_runs(self, bundle_path, capsys):
        code = main(["analyze", str(bundle_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "system-failure share" in out
        assert "outcome" in out

    def test_analyze_selected_tables(self, bundle_path, capsys):
        code = main(["analyze", str(bundle_path), "--tables", "outcomes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "=== outcomes ===" in out
        assert "=== causes ===" not in out

    def test_analyze_unknown_table(self, bundle_path, capsys):
        code = main(["analyze", str(bundle_path), "--tables", "nope"])
        assert code == 2

    def test_baseline_runs(self, bundle_path, capsys):
        code = main(["baseline", str(bundle_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "machine MTBF" in out

    def test_analyze_lenient_survives_corruption(self, bundle_path,
                                                 tmp_path, capsys):
        damaged = tmp_path / "damaged"
        corrupt_bundle(bundle_path, damaged, CorruptionConfig.uniform(0.05),
                       seed=17)
        code = main(["analyze", str(damaged), "--lenient",
                     "--tables", "outcomes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ingest:" in out
        assert "quarantined" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestValidate:
    def test_bad_rates_rejected_early(self, capsys):
        code = main(["validate", "--rates", "nope"])
        assert code == 2
        assert "bad --rates" in capsys.readouterr().out


class TestObservabilityFlags:
    @pytest.fixture(scope="class")
    def bundle_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-obs") / "bundle"
        assert main(["simulate", str(path), "--small", "--days", "15",
                     "--seed", "5"]) == 0
        return path

    def test_analyze_log_json_writes_events(self, bundle_path, tmp_path):
        from repro.obs.events import read_events

        log = tmp_path / "events.jsonl"
        assert main(["analyze", str(bundle_path), "--tables", "outcomes",
                     "--log-json", str(log)]) == 0
        # analyze itself emits nothing yet, but the logger must have been
        # installed and torn down cleanly (file created, env cleared).
        import os

        from repro.obs.events import LOG_ENV
        assert log.exists()
        assert LOG_ENV not in os.environ
        assert isinstance(read_events(log), list)

    def test_analyze_profile_writes_artifacts(self, bundle_path, tmp_path):
        profile_dir = tmp_path / "prof"
        assert main(["analyze", str(bundle_path), "--tables", "outcomes",
                     "--profile", str(profile_dir)]) == 0
        assert (profile_dir / "profile.collapsed").exists()
        table = (profile_dir / "profile.txt").read_text()
        assert "sampling profile:" in table

    def test_trace_profile_names_pipeline_code(self, tmp_path, capsys):
        profile_dir = tmp_path / "prof"
        assert main(["trace", "small", "--days", "2",
                     "--profile", str(profile_dir)]) == 0
        collapsed = (profile_dir / "profile.collapsed").read_text()
        # The end-to-end trace run spends its time in repro code; the
        # profiler must name it (simulator, ingest, or analysis frames).
        assert "repro." in collapsed

    def test_telemetry_flushes_on_failure(self, tmp_path):
        """A run that dies mid-way must still leave its telemetry -- the
        post-mortem is the whole point."""
        from repro.errors import ReproError

        telemetry = tmp_path / "telemetry"
        with pytest.raises(ReproError):
            main(["analyze", str(tmp_path / "no-such-bundle"),
                  "--telemetry", str(telemetry)])
        assert (telemetry / "trace.jsonl").exists()
        assert (telemetry / "metrics.prom").exists()
