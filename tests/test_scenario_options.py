"""Tests for scenario-level options: maintenance wiring, benign-event
switch, experiments CLI."""

from dataclasses import replace


from repro.faults.maintenance import MaintenanceSchedule
from repro.faults.taxonomy import ErrorCategory
from repro.sim.scenario import small_scenario


class TestScenarioOptions:
    def test_maintenance_wired_through(self):
        base = small_scenario(days=40.0, machine_scale=0.02,
                              workload_thinning=0.01, seed=9)
        with_pm = replace(base, maintenance=MaintenanceSchedule(
            period_days=10, duration_h=8, first_after_days=5))
        result = with_pm.run()
        # Nothing starts inside any PM window.
        windows = with_pm.maintenance.windows(with_pm.window)
        for job in result.jobs:
            for pm in windows:
                assert not pm.contains(job.start_time)

    def test_include_benign_false_strips_noise_categories(self):
        lean = small_scenario(days=30.0, machine_scale=0.05,
                              workload_thinning=0.005, seed=4)
        lean = replace(lean, include_benign_faults=False)
        result = lean.run()
        categories = {e.category for e in result.faults.events}
        assert ErrorCategory.DRAM_CORRECTABLE not in categories

    def test_benign_switch_does_not_change_outcomes(self):
        base = small_scenario(days=30.0, machine_scale=0.05,
                              workload_thinning=0.005, seed=4)
        with_noise = base.run()
        without_noise = replace(base, include_benign_faults=False).run()
        assert [(r.apid, r.outcome) for r in with_noise.runs] == \
               [(r.apid, r.outcome) for r in without_noise.runs]


class TestExperimentsCli:
    def test_unknown_id(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_runs_t1(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["T1"]) == 0
        out = capsys.readouterr().out
        assert "machine configuration" in out
        assert "22640" in out
