"""Tests for maintenance windows, the backfill policy, and queue-wait
analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.events import FaultTimeline
from repro.faults.maintenance import MaintenanceSchedule, downtime_budget
from repro.machine.allocation import NodeAllocator
from repro.machine.blueprints import MachineBlueprint, build_machine
from repro.machine.nodetypes import NodeType
from repro.sim.cluster import ClusterSimulator, SimConfig
from repro.util.intervals import Interval
from repro.util.timeutil import DAY, HOUR
from repro.workload.jobs import AppRunPlan, JobPlan
from repro.workload.scheduler import BackfillQueue

WINDOW = Interval(0.0, 60 * DAY)


def job(job_id, *, nodes=4, submit=0.0, duration=3600.0, walltime=None):
    return JobPlan(job_id=job_id, user="u", submit_time=submit,
                   node_type=NodeType.XE, nodes=nodes,
                   walltime_s=walltime if walltime is not None
                   else duration * 1.5,
                   runs=(AppRunPlan("app", duration, False),))


@pytest.fixture
def machine():
    return build_machine(MachineBlueprint(n_xe=32, n_xk=8, n_service=0))


class TestMaintenanceSchedule:
    def test_windows_periodic(self):
        schedule = MaintenanceSchedule(period_days=28, duration_h=8,
                                       first_after_days=14)
        windows = schedule.windows(Interval(0, 90 * DAY))
        assert len(windows) == 3
        assert windows[0].start == 14 * DAY
        assert windows[0].duration == 8 * HOUR

    def test_windows_clamped_to_horizon(self):
        schedule = MaintenanceSchedule(period_days=28, duration_h=8,
                                       first_after_days=27.9)
        windows = schedule.windows(Interval(0, 28 * DAY))
        assert windows[0].end == 28 * DAY

    def test_next_window_after(self):
        schedule = MaintenanceSchedule(first_after_days=10)
        nxt = schedule.next_window_after(11 * DAY, Interval(0, 90 * DAY))
        assert nxt.start == 38 * DAY

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            MaintenanceSchedule(period_days=0.1, duration_h=8)

    def test_downtime_budget(self):
        budget = downtime_budget(
            planned=[Interval(0, HOUR)],
            unplanned=[Interval(10 * HOUR, 12 * HOUR)],
            horizon=Interval(0, 100 * HOUR))
        assert budget["planned_share"] == pytest.approx(0.01)
        assert budget["unplanned_share"] == pytest.approx(0.02)
        assert budget["availability"] == pytest.approx(0.97)


class TestMaintenanceInSim:
    def test_nothing_starts_during_pm(self, machine):
        sim = ClusterSimulator(machine,
                               config=SimConfig(launch_failure_prob=0.0))
        pm = [Interval(1000.0, 5000.0)]
        plans = [job(1, submit=1500.0, duration=600.0)]
        result = sim.run(plans, FaultTimeline(events=[]), WINDOW,
                         maintenance=pm)
        assert result.jobs[0].start_time >= 5000.0

    def test_drain_before_pm(self, machine):
        sim = ClusterSimulator(machine,
                               config=SimConfig(launch_failure_prob=0.0))
        pm = [Interval(10_000.0, 20_000.0)]
        # Submitted at t=0 but would run into the window.
        plans = [job(1, submit=0.0, duration=9000.0, walltime=15_000.0)]
        result = sim.run(plans, FaultTimeline(events=[]), WINDOW,
                         maintenance=pm)
        assert result.jobs[0].start_time >= 20_000.0

    def test_short_job_runs_before_pm(self, machine):
        sim = ClusterSimulator(machine,
                               config=SimConfig(launch_failure_prob=0.0))
        pm = [Interval(10_000.0, 20_000.0)]
        plans = [job(1, submit=0.0, duration=600.0, walltime=900.0)]
        result = sim.run(plans, FaultTimeline(events=[]), WINDOW,
                         maintenance=pm)
        assert result.jobs[0].start_time < 10_000.0

    def test_pm_destroys_no_work(self, machine):
        from repro.workload.jobs import Outcome

        sim = ClusterSimulator(machine,
                               config=SimConfig(launch_failure_prob=0.0))
        pm = [Interval(5_000.0, 10_000.0)]
        plans = [job(i, submit=float(i * 10), duration=3000.0,
                     walltime=4000.0) for i in range(1, 20)]
        result = sim.run(plans, FaultTimeline(events=[]), WINDOW,
                         maintenance=pm)
        assert all(r.outcome is Outcome.COMPLETED for r in result.runs)


class TestBackfillPolicy:
    def make_queue(self, machine):
        return BackfillQueue(NodeAllocator(machine))

    def test_head_starts_when_it_fits(self, machine):
        queue = self.make_queue(machine)
        queue.submit(job(1, nodes=8))
        selected = queue.select(NodeType.XE, now=0.0, running=[])
        assert selected.job_id == 1

    def test_small_job_backfills_behind_blocked_head(self, machine):
        allocator = NodeAllocator(machine)
        allocator.allocate(NodeType.XE, 24)  # 8 free
        queue = BackfillQueue(allocator)
        queue.submit(job(1, nodes=16, walltime=3600.0))   # blocked head
        queue.submit(job(2, nodes=4, duration=100.0, walltime=100.0))
        running = [(7200.0, 24)]
        selected = queue.select(NodeType.XE, now=0.0, running=running)
        assert selected.job_id == 2  # ends (t=100) before shadow (t=7200)

    def test_backfill_must_not_delay_head(self, machine):
        allocator = NodeAllocator(machine)
        allocator.allocate(NodeType.XE, 28)  # 4 free
        queue = BackfillQueue(allocator)
        queue.submit(job(1, nodes=30, walltime=3600.0))  # blocked head
        # Fits now (4 <= 4 free) but runs past the shadow and exceeds
        # the 2 spare nodes the head would leave: would delay the head.
        queue.submit(job(2, nodes=4, duration=90_000.0, walltime=90_000.0))
        running = [(7200.0, 28)]
        assert queue.select(NodeType.XE, now=0.0, running=running) is None

    def test_spare_node_backfill(self, machine):
        allocator = NodeAllocator(machine)
        allocator.allocate(NodeType.XE, 24)  # 8 free
        queue = BackfillQueue(allocator)
        queue.submit(job(1, nodes=16, walltime=3600.0))
        # Long walltime but needs <= extra (24+8-16=16...) nodes: at the
        # shadow, 32 free minus head's 16 leaves 16 spare; 4 <= 16.
        queue.submit(job(2, nodes=4, duration=90_000.0, walltime=90_000.0))
        running = [(7200.0, 24)]
        selected = queue.select(NodeType.XE, now=0.0, running=running)
        assert selected.job_id == 2

    def test_pm_blocks_candidates(self, machine):
        queue = self.make_queue(machine)
        queue.submit(job(1, nodes=8, walltime=7200.0))
        assert queue.select(NodeType.XE, now=0.0, running=[],
                            pm_start=3600.0) is None

    def test_backfill_in_simulator_reduces_waits(self, machine):
        # Head job blocks FCFS; a small job behind it can backfill into
        # the two nodes the first job leaves free.
        plans = [job(1, nodes=30, submit=0.0, duration=3600.0),
                 job(2, nodes=32, submit=1.0, duration=3600.0),
                 job(3, nodes=2, submit=2.0, duration=60.0, walltime=100.0)]
        waits = {}
        for policy in ("fcfs", "backfill"):
            sim = ClusterSimulator(machine, config=SimConfig(
                launch_failure_prob=0.0, scheduler_policy=policy))
            result = sim.run(plans, FaultTimeline(events=[]), WINDOW)
            job3 = [j for j in result.jobs if j.job_id == 3][0]
            waits[policy] = job3.queue_wait_s
        assert waits["backfill"] < waits["fcfs"]


class TestQueueingAnalysis:
    def test_waits_from_torque_records(self, bundle):
        from repro.core.queueing import overall_wait_stats, queue_waits_by_scale

        stats = overall_wait_stats(bundle.torque_records)
        assert stats["jobs"] > 0
        assert stats["median_wait_s"] >= 0
        buckets = queue_waits_by_scale(bundle.torque_records)
        assert sum(b.jobs for b in buckets) == stats["jobs"]
