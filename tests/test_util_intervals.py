"""Tests for repro.util.intervals, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.util.intervals import (
    Interval,
    IntervalIndex,
    merge_intervals,
    sweep_join,
    total_covered,
)


def ivs(max_value: float = 1000.0):
    """Strategy producing a valid interval."""
    return st.tuples(
        st.floats(0, max_value, allow_nan=False),
        st.floats(0, max_value, allow_nan=False),
    ).map(lambda p: Interval(min(p), max(p)))


class TestInterval:
    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_contains_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert not iv.contains(2.0)

    def test_abutting_do_not_overlap(self):
        assert not Interval(0, 1).overlaps(Interval(1, 2))

    def test_overlap_symmetric(self):
        a, b = Interval(0, 5), Interval(4, 6)
        assert a.overlaps(b) and b.overlaps(a)

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)

    def test_intersection_disjoint_is_none(self):
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_union_span(self):
        assert Interval(0, 1).union_span(Interval(5, 6)) == Interval(0, 6)

    def test_padded(self):
        assert Interval(5, 6).padded(1) == Interval(4, 7)
        assert Interval(5, 6).padded(1, 2) == Interval(4, 8)

    def test_shifted(self):
        assert Interval(1, 2).shifted(10) == Interval(11, 12)

    @given(ivs(), ivs())
    def test_overlap_iff_nonempty_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersection(b) is not None)

    @given(ivs(), ivs())
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert inter.start >= max(a.start, b.start)
            assert inter.end <= min(a.end, b.end)


class TestMerge:
    def test_merge_overlapping(self):
        merged = merge_intervals([Interval(0, 2), Interval(1, 3)])
        assert merged == [Interval(0, 3)]

    def test_merge_with_gap(self):
        merged = merge_intervals([Interval(0, 1), Interval(2, 3)], gap=1.0)
        assert merged == [Interval(0, 3)]

    def test_merge_keeps_disjoint(self):
        merged = merge_intervals([Interval(0, 1), Interval(5, 6)])
        assert len(merged) == 2

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            merge_intervals([], gap=-1)

    @given(st.lists(ivs(), max_size=30))
    def test_merged_are_sorted_and_disjoint(self, intervals):
        merged = merge_intervals(intervals)
        for a, b in zip(merged, merged[1:]):
            assert a.end < b.start

    @given(st.lists(ivs(), max_size=30))
    def test_total_covered_bounds(self, intervals):
        covered = total_covered(intervals)
        raw = sum(iv.duration for iv in intervals)
        assert 0.0 <= covered <= raw + 1e-9


class TestIntervalIndex:
    def test_overlap_query(self):
        items = [(Interval(i, i + 2), i) for i in range(0, 20, 3)]
        index = IntervalIndex(items)
        hits = set(index.payloads_overlapping(Interval(4, 8)))
        brute = {p for iv, p in items if iv.overlaps(Interval(4, 8))}
        assert hits == brute

    def test_stabbing(self):
        index = IntervalIndex([(Interval(0, 10), "a"), (Interval(5, 6), "b")])
        assert {p for _iv, p in index.stabbing(5.5)} == {"a", "b"}
        assert {p for _iv, p in index.stabbing(8.0)} == {"a"}

    def test_len(self):
        assert len(IntervalIndex([])) == 0

    @given(st.lists(ivs(100), max_size=40), ivs(100))
    def test_index_matches_brute_force(self, items, query):
        pairs = [(iv, i) for i, iv in enumerate(items)]
        index = IntervalIndex(pairs)
        got = sorted(p for _iv, p in index.overlapping(query))
        brute = sorted(i for i, iv in enumerate(items) if iv.overlaps(query))
        assert got == brute


class TestSweepJoin:
    def test_basic_pairs(self):
        left = [(Interval(0, 5), "l0"), (Interval(10, 12), "l1")]
        right = [(Interval(4, 11), "r0"), (Interval(20, 21), "r1")]
        pairs = set(sweep_join(left, right))
        assert pairs == {("l0", "r0"), ("l1", "r0")}

    @given(st.lists(ivs(50), max_size=25), st.lists(ivs(50), max_size=25))
    def test_join_matches_brute_force(self, lefts, rights):
        left = [(iv, f"l{i}") for i, iv in enumerate(lefts)]
        right = [(iv, f"r{i}") for i, iv in enumerate(rights)]
        got = set(sweep_join(left, right))
        brute = {(lp, rp) for liv, lp in left for riv, rp in right
                 if liv.overlaps(riv)}
        assert got == brute
