"""Tests for symptom propagation, the detection model, and SWO helpers."""

import pytest

from repro.faults.detection import (
    PERFECT_DETECTION,
    XE_GRADE_XK_DETECTION,
    DetectionModel,
)
from repro.faults.events import FaultEvent, FaultTimeline
from repro.faults.injector import FaultInjector
from repro.faults.propagation import PropagationModel
from repro.faults.swo import availability, outage_windows, swo_events
from repro.faults.taxonomy import CATEGORY_SPECS, ErrorCategory
from repro.machine.blueprints import MachineBlueprint, build_machine
from repro.machine.nodetypes import NodeType
from repro.util.intervals import Interval
from repro.util.timeutil import DAY


@pytest.fixture(scope="module")
def machine():
    return build_machine(MachineBlueprint(n_xe=96, n_xk=24, n_service=4))


def make_event(category, component, *, event_id=0, time=100.0, detected=True,
               fatal=True, node_ids=(), fabric_vertex=None, repair_s=0.0):
    return FaultEvent(event_id=event_id, time=time, category=category,
                      component=component, node_ids=node_ids,
                      fabric_vertex=fabric_vertex, fatal=fatal,
                      detected=detected, repair_s=repair_s)


class TestPropagation:
    def test_undetected_leaves_no_trace(self, machine):
        model = PropagationModel(machine, seed=1)
        event = make_event(ErrorCategory.MCE, "c0-0c0s0n0", detected=False)
        assert model.expand(event) == []

    def test_root_symptom_first(self, machine):
        model = PropagationModel(machine, seed=1)
        event = make_event(ErrorCategory.MCE, "c0-0c0s0n0")
        symptoms = model.expand(event)
        assert symptoms[0].kind == 0
        assert symptoms[0].component == "c0-0c0s0n0"
        assert symptoms[0].time == event.time

    def test_symptoms_not_before_root(self, machine):
        model = PropagationModel(machine, seed=2)
        event = make_event(ErrorCategory.GEMINI_LINK, "c0-0c0s0g0",
                           fabric_vertex=0)
        for symptom in model.expand(event):
            assert symptom.time >= event.time

    def test_fabric_witnesses_are_neighbour_geminis(self, machine):
        model = PropagationModel(machine, seed=3)
        event = make_event(ErrorCategory.GEMINI_LINK, "c0-0c0s0g0",
                           fabric_vertex=0)
        symptoms = model.expand(event)
        for symptom in symptoms[1:]:
            # Witness components must be well-formed gemini cnames.
            int(symptom.component.split("s")[1][0])  # crude format check
            assert symptom.component.count("g") == 1

    def test_storm_sizes_follow_burst_mean(self, machine):
        model = PropagationModel(machine, seed=4)
        sizes = []
        for i in range(300):
            event = make_event(ErrorCategory.SWO, "system", event_id=i)
            sizes.append(len(model.expand(event)))
        mean = sum(sizes) / len(sizes)
        expected = CATEGORY_SPECS[ErrorCategory.SWO].burst_mean
        assert abs(mean - expected) < 0.2 * expected

    def test_expand_all_sorted(self, machine):
        injector = FaultInjector(machine, seed=5)
        timeline = injector.generate(Interval(0, 120 * DAY))
        symptoms = PropagationModel(machine, seed=5).expand_all(timeline.events)
        times = [s.time for s in symptoms]
        assert times == sorted(times)

    def test_provenance_preserved(self, machine):
        model = PropagationModel(machine, seed=6)
        event = make_event(ErrorCategory.LUSTRE_MDS, "mds00", event_id=99)
        for symptom in model.expand(event):
            assert symptom.event_id == 99


class TestDetectionModel:
    def test_default_uses_taxonomy(self):
        model = DetectionModel()
        spec = CATEGORY_SPECS[ErrorCategory.MCE]
        assert model.probability(ErrorCategory.MCE, NodeType.XK) == \
            spec.detection_for(NodeType.XK)

    def test_specific_override_wins(self):
        model = DetectionModel(overrides={
            (ErrorCategory.MCE, NodeType.XK): 0.5,
            (ErrorCategory.MCE, None): 0.1})
        assert model.probability(ErrorCategory.MCE, NodeType.XK) == 0.5
        assert model.probability(ErrorCategory.MCE, NodeType.XE) == 0.1

    def test_perfect_detection(self):
        for category in ErrorCategory:
            for node_type in NodeType:
                assert PERFECT_DETECTION.probability(category, node_type) == 1.0

    def test_out_of_range_override_rejected(self):
        with pytest.raises(ValueError):
            DetectionModel(overrides={(ErrorCategory.MCE, None): 1.5})

    def test_xe_grade_xk_closes_cpu_gap(self):
        model = XE_GRADE_XK_DETECTION
        for category in (ErrorCategory.MCE, ErrorCategory.KERNEL_PANIC,
                         ErrorCategory.NODE_HEARTBEAT):
            spec = CATEGORY_SPECS[category]
            assert model.probability(category, NodeType.XK) == \
                spec.detection_for(NodeType.XE)

    def test_xe_grade_xk_raises_gpu_coverage(self):
        model = XE_GRADE_XK_DETECTION
        for category in (ErrorCategory.GPU_DBE, ErrorCategory.GPU_XID):
            assert model.probability(category, NodeType.XK) > \
                CATEGORY_SPECS[category].detection_for(NodeType.XK)


class TestSwoHelpers:
    def make_timeline(self):
        events = [
            make_event(ErrorCategory.SWO, "system", event_id=1, time=1000.0,
                       repair_s=3600.0),
            make_event(ErrorCategory.MCE, "c0-0c0s0n0", event_id=2,
                       time=2000.0),
            make_event(ErrorCategory.SWO, "system", event_id=3, time=50000.0,
                       repair_s=1800.0),
        ]
        return FaultTimeline(events=events)

    def test_swo_events_selected(self):
        assert [e.event_id for e in swo_events(self.make_timeline())] == [1, 3]

    def test_outage_windows(self):
        windows = outage_windows(self.make_timeline())
        assert len(windows) == 2
        assert windows[0].duration == 3600.0

    def test_availability(self):
        window = Interval(0.0, 100_000.0)
        a = availability(self.make_timeline(), window)
        assert a == pytest.approx(1.0 - 5400.0 / 100_000.0)

    def test_availability_empty_timeline(self):
        assert availability(FaultTimeline(events=[]), Interval(0, 10)) == 1.0

    def test_availability_bad_window(self):
        with pytest.raises(ValueError):
            availability(FaultTimeline(events=[]), Interval(5, 5))

    def test_timeline_summary(self):
        summary = self.make_timeline().summary()
        assert summary["events"] == 3
        assert summary["fatal"] == 3

    def test_timeline_merge(self):
        a = self.make_timeline()
        merged = FaultTimeline.merge([a, FaultTimeline(events=[])])
        assert len(merged) == len(a)
