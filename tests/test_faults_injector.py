"""Tests for the fault injector."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.detection import PERFECT_DETECTION, DetectionModel
from repro.faults.injector import DEFAULT_RATES, FaultInjector, FaultRates
from repro.faults.taxonomy import ErrorCategory, EventScope
from repro.machine.blueprints import MachineBlueprint, build_machine
from repro.machine.cname import parse_cname
from repro.util.intervals import Interval
from repro.util.timeutil import DAY


@pytest.fixture(scope="module")
def machine():
    return build_machine(MachineBlueprint(n_xe=192, n_xk=48, n_service=8))


@pytest.fixture(scope="module")
def timeline(machine):
    injector = FaultInjector(machine, seed=5)
    return injector.generate(Interval(0, 365 * DAY))


class TestGeneration:
    def test_sorted_by_time(self, timeline):
        times = [e.time for e in timeline]
        assert times == sorted(times)

    def test_event_ids_unique(self, timeline):
        ids = [e.event_id for e in timeline]
        assert len(ids) == len(set(ids))

    def test_deterministic(self, machine):
        a = FaultInjector(machine, seed=5).generate(Interval(0, 30 * DAY))
        b = FaultInjector(machine, seed=5).generate(Interval(0, 30 * DAY))
        assert [(e.time, e.category, e.component) for e in a] == \
               [(e.time, e.category, e.component) for e in b]

    def test_seed_changes_timeline(self, machine):
        a = FaultInjector(machine, seed=5).generate(Interval(0, 30 * DAY))
        b = FaultInjector(machine, seed=6).generate(Interval(0, 30 * DAY))
        assert [e.time for e in a] != [e.time for e in b]

    def test_gpu_events_only_on_xk(self, machine, timeline):
        for event in timeline:
            if event.category in (ErrorCategory.GPU_DBE, ErrorCategory.GPU_XID,
                                  ErrorCategory.GPU_SXM_POWER):
                node = machine.node(event.node_ids[0])
                assert node.node_type.has_gpu
                assert event.component.endswith("a0")

    def test_node_events_carry_one_node(self, timeline):
        for event in timeline:
            if event.scope is EventScope.NODE:
                assert len(event.node_ids) == 1

    def test_fabric_events_have_epicenter(self, machine, timeline):
        fabric = [e for e in timeline if e.scope is EventScope.FABRIC]
        assert fabric, "expected some fabric events in a year"
        for event in fabric:
            assert event.fabric_vertex is not None
            assert 0 <= event.fabric_vertex < machine.topology.n_vertices
            assert parse_cname(event.component).kind.value == "gemini"

    def test_router_failures_take_down_their_nodes(self, machine, timeline):
        routers = [e for e in timeline
                   if e.category is ErrorCategory.GEMINI_ROUTER]
        for event in routers:
            for node_id in event.node_ids:
                assert machine.node(node_id).gemini_vertex == event.fabric_vertex

    def test_cabinet_events_cover_cabinet(self, machine, timeline):
        cabinets = [e for e in timeline
                    if e.category is ErrorCategory.CABINET_POWER]
        for event in cabinets:
            cab = parse_cname(event.component)
            for node_id in event.node_ids:
                assert machine.node(node_id).name.same_cabinet(cab)

    def test_filesystem_components_are_servers(self, machine, timeline):
        for event in timeline:
            if event.category in (ErrorCategory.LUSTRE_OSS,
                                  ErrorCategory.LUSTRE_MDS):
                assert event.component in machine.lustre_servers

    def test_benign_never_fatal(self, timeline):
        for event in timeline:
            if event.category in (ErrorCategory.DRAM_CORRECTABLE,
                                  ErrorCategory.HSN_THROTTLE):
                assert not event.fatal

    def test_fatal_hardware_events_have_repair(self, timeline):
        for event in timeline:
            if event.fatal and event.spec.mean_repair_s > 0:
                assert event.repair_s > 0

    def test_include_benign_false_strips_noise(self, machine):
        injector = FaultInjector(machine, seed=5)
        lean = injector.generate(Interval(0, 90 * DAY), include_benign=False)
        categories = {e.category for e in lean}
        assert ErrorCategory.DRAM_CORRECTABLE not in categories
        assert ErrorCategory.HSN_THROTTLE not in categories

    def test_lean_keeps_lethal_events(self, machine):
        full = FaultInjector(machine, seed=5).generate(Interval(0, 90 * DAY))
        lean = FaultInjector(machine, seed=5).generate(
            Interval(0, 90 * DAY), include_benign=False)
        fatal_full = {(e.time, e.category) for e in full if e.fatal}
        fatal_lean = {(e.time, e.category) for e in lean if e.fatal}
        assert fatal_full == fatal_lean


class TestRates:
    def test_node_event_volume_matches_rate(self, machine):
        rate = DEFAULT_RATES.node[ErrorCategory.DRAM_CORRECTABLE]
        window = Interval(0, 365 * DAY)
        timeline = FaultInjector(machine, seed=9).generate(window)
        count = sum(1 for e in timeline
                    if e.category is ErrorCategory.DRAM_CORRECTABLE)
        expected = rate * len(machine) * window.duration / 3600.0
        assert abs(count - expected) < 0.5 * expected + 20

    def test_scaled_rates(self):
        doubled = DEFAULT_RATES.scaled(2.0)
        assert doubled.node[ErrorCategory.MCE] == pytest.approx(
            2 * DEFAULT_RATES.node[ErrorCategory.MCE])

    def test_scaled_selected_categories(self):
        only_mce = DEFAULT_RATES.scaled(0.0, categories={ErrorCategory.MCE})
        assert only_mce.node[ErrorCategory.MCE] == 0.0
        assert only_mce.node[ErrorCategory.DRAM_UNCORRECTABLE] == \
            DEFAULT_RATES.node[ErrorCategory.DRAM_UNCORRECTABLE]

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRates(node={ErrorCategory.MCE: -1.0})

    def test_bad_burstiness_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRates(burstiness=1.5)


class TestDetectionIntegration:
    def test_perfect_detection_no_silent_faults(self, machine):
        injector = FaultInjector(machine, seed=7,
                                 detection=PERFECT_DETECTION)
        timeline = injector.generate(Interval(0, 365 * DAY))
        assert all(e.detected for e in timeline)

    def test_zero_detection_all_silent(self, machine):
        blind = DetectionModel(overrides={(c, None): 0.0
                                          for c in ErrorCategory})
        injector = FaultInjector(machine, seed=7, detection=blind)
        timeline = injector.generate(Interval(0, 180 * DAY))
        assert timeline.events
        assert not any(e.detected for e in timeline)

    def test_default_has_silent_gpu_kills(self, machine):
        injector = FaultInjector(machine, seed=13)
        timeline = injector.generate(Interval(0, 10 * 365 * DAY))
        gpu_fatal = [e for e in timeline if e.fatal and e.category in
                     (ErrorCategory.GPU_DBE, ErrorCategory.GPU_XID)]
        assert gpu_fatal
        silent = [e for e in gpu_fatal if not e.detected]
        assert silent, "GPU faults should sometimes go undetected"
