"""Tests for deterministic RNG substreams."""

import pytest

from repro.util.rngs import RngFactory, substream


class TestSubstream:
    def test_same_seed_same_name_identical(self):
        a = substream(7, "x").random(5)
        b = substream(7, "x").random(5)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        a = substream(7, "x").random(5)
        b = substream(7, "y").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = substream(7, "x").random(5)
        b = substream(8, "x").random(5)
        assert list(a) != list(b)

    def test_unicode_names_ok(self):
        assert substream(1, "fautes/mémoire").random() is not None


class TestRngFactory:
    def test_get_returns_fresh_stream(self):
        factory = RngFactory(3)
        first = factory.get("a").random(3)
        second = factory.get("a").random(3)
        assert list(first) == list(second)

    def test_issued_names_tracked(self):
        factory = RngFactory(3)
        factory.get("a")
        factory.get("b")
        assert factory.issued_names == ["a", "b"]

    def test_child_namespacing(self):
        factory = RngFactory(3)
        scoped = factory.child("faults")
        direct = factory.get("faults/mce").random(4)
        via_child = scoped.get("mce").random(4)
        assert list(direct) == list(via_child)

    def test_nested_children(self):
        factory = RngFactory(3)
        deep = factory.child("a").child("b")
        assert list(deep.get("c").random(2)) == list(
            factory.get("a/b/c").random(2))

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("not-a-seed")  # type: ignore[arg-type]

    def test_insensitive_to_issue_order(self):
        f1 = RngFactory(9)
        f1.get("first")
        late = f1.get("second").random(3)
        f2 = RngFactory(9)
        early = f2.get("second").random(3)
        assert list(late) == list(early)
