"""Fuzz tests: parsers must fail *predictably* on arbitrary text.

Strict parsers raise :class:`LogFormatError` (never anything else);
lenient stream parsing never raises at all.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LogFormatError
from repro.logs.alps import parse_alps, parse_alps_line
from repro.logs.errorlogs import parse_stream, parse_syslog_line
from repro.logs.torque import parse_torque, parse_torque_line
from repro.util.timeutil import Epoch

EPOCH = Epoch()

text_lines = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="\n\r"),
    max_size=200)


class TestFuzz:
    @given(text_lines)
    @settings(max_examples=120, deadline=None)
    def test_syslog_line_raises_only_logformaterror(self, line):
        try:
            parse_syslog_line(line, EPOCH)
        except LogFormatError:
            pass

    @given(text_lines)
    @settings(max_examples=120, deadline=None)
    def test_torque_line_raises_only_logformaterror(self, line):
        try:
            parse_torque_line(line, EPOCH)
        except LogFormatError:
            pass

    @given(text_lines)
    @settings(max_examples=120, deadline=None)
    def test_alps_line_raises_only_logformaterror(self, line):
        try:
            parse_alps_line(line, EPOCH)
        except LogFormatError:
            pass

    @given(st.lists(text_lines, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_lenient_streams_never_raise(self, lines):
        for source in ("syslog", "hwerrlog", "console"):
            list(parse_stream(source, lines, EPOCH, strict=False))
        list(parse_torque(lines, EPOCH, strict=False))
        list(parse_alps(lines, EPOCH, strict=False))

    def test_near_miss_syslog(self):
        # Right shape, wrong month name: rejected, not crashed.
        with pytest.raises(LogFormatError):
            parse_syslog_line("Xyz  1 00:00:00 host kernel: msg", EPOCH)

    def test_near_miss_torque_timestamp(self):
        with pytest.raises(LogFormatError):
            parse_torque_line("99/99/2013 00:00:00;E;1.bw;user=u", EPOCH)
