"""Fuzz and property tests: parsers must fail *predictably*.

Three families of invariant:

* strict parsers raise :class:`LogFormatError` (never anything else) on
  arbitrary text, and lenient stream parsing never raises at all;
* the nid-range codec and the cname text form round-trip exactly;
* lenient ingest of corruptor-mutated *valid* lines never raises, and
  the :class:`IngestReport` accounts for every non-blank line exactly
  once (parsed XOR quarantined).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LogFormatError
from repro.faults.corruptor import (
    CorruptionConfig,
    CorruptionReport,
    corrupt_lines,
)
from repro.logs.alps import parse_alps, parse_alps_line
from repro.logs.errorlogs import parse_stream, parse_syslog_line
from repro.logs.nids import decode_nids, encode_nids
from repro.logs.quarantine import IngestReport
from repro.logs.torque import parse_torque, parse_torque_line
from repro.machine.cname import CName, format_cname, parse_cname
from repro.util.rngs import substream
from repro.util.timeutil import Epoch

EPOCH = Epoch()

text_lines = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="\n\r"),
    max_size=200)


class TestFuzz:
    @given(text_lines)
    @settings(max_examples=120, deadline=None)
    def test_syslog_line_raises_only_logformaterror(self, line):
        try:
            parse_syslog_line(line, EPOCH)
        except LogFormatError:
            pass

    @given(text_lines)
    @settings(max_examples=120, deadline=None)
    def test_torque_line_raises_only_logformaterror(self, line):
        try:
            parse_torque_line(line, EPOCH)
        except LogFormatError:
            pass

    @given(text_lines)
    @settings(max_examples=120, deadline=None)
    def test_alps_line_raises_only_logformaterror(self, line):
        try:
            parse_alps_line(line, EPOCH)
        except LogFormatError:
            pass

    @given(st.lists(text_lines, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_lenient_streams_never_raise(self, lines):
        for source in ("syslog", "hwerrlog", "console"):
            list(parse_stream(source, lines, EPOCH, strict=False))
        list(parse_torque(lines, EPOCH, strict=False))
        list(parse_alps(lines, EPOCH, strict=False))

    def test_near_miss_syslog(self):
        # Right shape, wrong month name: rejected, not crashed.
        with pytest.raises(LogFormatError):
            parse_syslog_line("Xyz  1 00:00:00 host kernel: msg", EPOCH)

    def test_near_miss_torque_timestamp(self):
        with pytest.raises(LogFormatError):
            parse_torque_line("99/99/2013 00:00:00;E;1.bw;user=u", EPOCH)


@st.composite
def cnames(draw) -> CName:
    """Valid cnames at every depth, node and gemini branches included."""
    col = draw(st.integers(0, 99))
    row = draw(st.integers(0, 99))
    chassis = slot = node = gemini = acc = None
    depth = draw(st.integers(0, 3))
    if depth >= 1:
        chassis = draw(st.integers(0, 2))
    if depth >= 2:
        slot = draw(st.integers(0, 7))
    if depth >= 3:
        if draw(st.booleans()):
            gemini = draw(st.integers(0, 1))
        else:
            node = draw(st.integers(0, 3))
            if draw(st.booleans()):
                acc = draw(st.integers(0, 9))
    return CName(col, row, chassis, slot, node, gemini, acc)


class TestRoundTrips:
    @given(st.lists(st.integers(0, 60_000), max_size=400))
    @settings(max_examples=150, deadline=None)
    def test_nids_round_trip(self, ids):
        assert decode_nids(encode_nids(ids)) == tuple(sorted(set(ids)))

    @given(st.lists(st.integers(0, 60_000), max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_nids_encoding_is_canonical(self, ids):
        # Re-encoding a decoded list reproduces the text exactly.
        text = encode_nids(ids)
        assert encode_nids(decode_nids(text)) == text

    @given(cnames())
    @settings(max_examples=150, deadline=None)
    def test_cname_round_trip(self, name):
        assert parse_cname(format_cname(name)) == name

    @given(cnames())
    @settings(max_examples=60, deadline=None)
    def test_cname_str_matches_format(self, name):
        assert str(name) == format_cname(name)


#: One known-good line per stream; the corruptor mutates these.
_VALID_LINES = {
    "syslog": [
        "Apr  1 00:00:02 c3-7c1s4n2 kernel: NVRM: Xid (c3-7c1s4n2a0): 48",
        "Apr  2 13:45:10 c0-0c0s0n1 kernel: LNet: critical hardware error",
    ],
    "hwerrlog": [
        "2013-04-01T00:00:02|c3-7c1s4g1|HWERR[c3-7c1s4g1]: LCB lane failed",
        "2013-04-03T08:12:59|c1-2c2s7g0|HWERR[c1-2c2s7g0]: SSID detected",
    ],
    "console": [
        "[2013-04-01 00:00:02] c3-7c1s4n2 Kernel panic - not syncing: fatal",
        "[2013-04-02 21:00:41] c0-1c1s3n0 MCE: machine check exception",
    ],
    "torque": [
        "04/01/2013 12:00:00;S;12345.bw;user=user0042 queue=normal "
        "Resource_List.nodes=128 Resource_List.walltime=04:00:00 "
        "qtime=1364816000 start=1364817600 exec_host=0-127",
        "04/01/2013 16:00:00;E;12345.bw;user=user0042 queue=normal "
        "Resource_List.nodes=128 Resource_List.walltime=04:00:00 "
        "qtime=1364816000 start=1364817600 end=1364832000 "
        "exec_host=0-127 Exit_status=0",
    ],
    "apsys": [
        "2013-04-01T00:00:02 apsys apid=7 kind=start batch_id=3.bw "
        "user=user0001 cmd=namd2 nids=0-127",
        "2013-04-01T04:00:02 apsys apid=7 kind=end batch_id=3.bw "
        "user=user0001 cmd=namd2 nids=0-127 exit_code=0 exit_signal=0",
    ],
}

_STREAM_FILENAMES = {"syslog": "syslog.log", "hwerrlog": "hwerr.log",
                     "console": "console.log", "torque": "torque.log",
                     "apsys": "apsys.log"}


def _mutate(source: str, seed: int, rate: float) -> list[str]:
    filename = _STREAM_FILENAMES[source]
    config = CorruptionConfig.uniform(rate)
    rng = substream(seed, f"fuzz/{filename}")
    report = CorruptionReport(seed=seed)
    return corrupt_lines(filename, list(_VALID_LINES[source] * 4),
                         config, rng, report)


class TestCorruptedLenientIngest:
    """Lenient parsing of damaged-but-once-valid lines never crashes."""

    @given(st.integers(0, 2**32 - 1), st.floats(0.05, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_error_streams_account_for_every_line(self, seed, rate):
        for source in ("syslog", "hwerrlog", "console"):
            mutated = _mutate(source, seed, rate)
            report = IngestReport()
            records = list(parse_stream(source, mutated, EPOCH,
                                        strict=False, report=report))
            nonblank = sum(1 for line in mutated if line.strip())
            assert report.total_parsed == len(records)
            assert report.total_parsed + report.total_quarantined == nonblank

    @given(st.integers(0, 2**32 - 1), st.floats(0.05, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_torque_accounts_for_every_line(self, seed, rate):
        mutated = _mutate("torque", seed, rate)
        report = IngestReport()
        records = list(parse_torque(mutated, EPOCH,
                                    strict=False, report=report))
        nonblank = sum(1 for line in mutated if line.strip())
        assert report.total_parsed == len(records)
        assert report.total_parsed + report.total_quarantined == nonblank

    @given(st.integers(0, 2**32 - 1), st.floats(0.05, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_alps_accounts_for_every_line(self, seed, rate):
        mutated = _mutate("apsys", seed, rate)
        report = IngestReport()
        records = list(parse_alps(mutated, EPOCH,
                                  strict=False, report=report))
        nonblank = sum(1 for line in mutated if line.strip())
        assert report.total_parsed == len(records)
        assert report.total_parsed + report.total_quarantined == nonblank

    @given(st.lists(text_lines, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_quarantine_defects_are_labelled(self, lines):
        report = IngestReport()
        list(parse_stream("syslog", lines, EPOCH, strict=False,
                          report=report))
        # Every quarantined line carries a named defect bucket.
        assert sum(report.defects.values()) == report.total_quarantined
        for key in report.defects:
            stream, _, defect = key.partition(":")
            assert stream == "syslog" and defect
