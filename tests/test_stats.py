"""Tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.ecdf import ecdf, quantiles, survival
from repro.stats.fitting import best_fit, fit_all, fit_distribution
from repro.stats.hazard import empirical_hazard, hazard_trend
from repro.stats.intervals import bootstrap_mean_interval, wilson_interval


class TestWilson:
    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert 0.0 < hi < 0.05

    def test_all_successes(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == 1.0
        assert 0.95 < lo < 1.0

    def test_contains_point_estimate(self):
        for k, n in [(1, 10), (5, 50), (30, 60), (99, 100)]:
            lo, hi = wilson_interval(k, n)
            assert lo <= k / n <= hi

    def test_narrows_with_n(self):
        lo1, hi1 = wilson_interval(5, 50)
        lo2, hi2 = wilson_interval(50, 500)
        assert hi2 - lo2 < hi1 - lo1

    def test_zero_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    @given(st.integers(0, 200), st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_bounds_property(self, k, n):
        if k > n:
            return
        lo, hi = wilson_interval(k, n)
        assert 0.0 <= lo <= hi <= 1.0

    def test_wider_at_higher_confidence(self):
        lo95, hi95 = wilson_interval(10, 100, confidence=0.95)
        lo99, hi99 = wilson_interval(10, 100, confidence=0.99)
        assert hi99 - lo99 > hi95 - lo95


class TestBootstrap:
    def test_contains_mean_usually(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(5.0, size=200)
        lo, hi = bootstrap_mean_interval(values, seed=1)
        assert lo < values.mean() < hi

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_interval(np.array([]))


class TestEcdf:
    def test_basic(self):
        xs, ps = ecdf(np.array([3.0, 1.0, 2.0]))
        assert list(xs) == [1.0, 2.0, 3.0]
        assert ps[-1] == 1.0

    def test_survival_complements(self):
        xs, s = survival(np.array([1.0, 2.0, 3.0, 4.0]))
        _xs, ps = ecdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.allclose(s + ps, 1.0)

    def test_quantiles(self):
        qs = quantiles(np.arange(101.0), (0.5,))
        assert qs[0.5] == 50.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf(np.array([]))


class TestFitting:
    def exponential_sample(self, n=800):
        return np.random.default_rng(3).exponential(10.0, size=n)

    def weibull_sample(self, n=800, shape=0.5):
        rng = np.random.default_rng(4)
        return 10.0 * rng.weibull(shape, size=n)

    def test_exponential_recovers_scale(self):
        fit = fit_distribution(self.exponential_sample(), "exponential")
        assert fit.params[0] == pytest.approx(10.0, rel=0.15)

    def test_weibull_recovers_shape(self):
        fit = fit_distribution(self.weibull_sample(), "weibull")
        assert fit.params[0] == pytest.approx(0.5, rel=0.2)

    def test_best_fit_picks_weibull_for_clustered(self):
        fits = fit_all(self.weibull_sample())
        assert fits[0].family in ("weibull", "lognormal")
        by_family = {f.family: f for f in fits}
        assert by_family["weibull"].ks_statistic < \
            by_family["exponential"].ks_statistic

    def test_best_fit_ok_with_exponential_data(self):
        best_fit(self.exponential_sample())
        # Exponential is a Weibull(shape=1); either may win, but the
        # exponential must not be strongly rejected.
        exp_fit = fit_distribution(self.exponential_sample(), "exponential")
        assert exp_fit.ks_pvalue > 0.01

    def test_describe_mentions_family(self):
        fit = fit_distribution(self.exponential_sample(), "exponential")
        assert "exponential" in fit.describe()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            fit_distribution(np.array([1.0, -1.0, 2.0, 3.0]), "weibull")

    def test_too_few_rejected(self):
        with pytest.raises(ValueError):
            fit_distribution(np.array([1.0, 2.0]), "exponential")

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            fit_distribution(self.exponential_sample(), "cauchy")


class TestHazard:
    def test_exponential_flat_trend(self):
        samples = np.random.default_rng(5).exponential(10.0, size=3000)
        assert abs(hazard_trend(samples)) < 0.5

    def test_clustered_decreasing_trend(self):
        rng = np.random.default_rng(6)
        samples = 10.0 * rng.weibull(0.4, size=3000)
        assert hazard_trend(samples) < -0.3

    def test_wearout_increasing_trend(self):
        rng = np.random.default_rng(7)
        samples = 10.0 * rng.weibull(3.0, size=3000)
        assert hazard_trend(samples) > 0.3

    def test_hazard_positive(self):
        samples = np.random.default_rng(8).exponential(10.0, size=500)
        _mids, rates = empirical_hazard(samples)
        assert np.all(rates >= 0)

    def test_too_few_rejected(self):
        with pytest.raises(ValueError):
            empirical_hazard(np.array([1.0, 2.0]))
