"""Tests for the log bundle round-trip (the simulator/pipeline boundary)."""

import json

import pytest

from repro.errors import LogFormatError
from repro.logs.bundle import BUNDLE_FILES, read_bundle, write_bundle
from repro.workload.jobs import Outcome


class TestWrite:
    def test_all_files_present(self, bundle_dir):
        for name in BUNDLE_FILES:
            assert (bundle_dir / name).exists(), name

    def test_manifest_contents(self, bundle_dir):
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        assert manifest["format"] == "repro-logbundle/1"
        assert manifest["machine"]["nodes_xe"] > 0
        assert len(manifest["torus_dims"]) == 3
        assert manifest["counts"]["runs"] > 0

    def test_nodemap_covers_machine(self, sim_result, bundle_dir):
        lines = (bundle_dir / "nodemap.txt").read_text().splitlines()
        assert len(lines) == len(sim_result.machine)

    def test_deterministic_bytes(self, sim_result, tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        write_bundle(sim_result, a_dir, seed=1)
        write_bundle(sim_result, b_dir, seed=1)
        for name in BUNDLE_FILES:
            assert (a_dir / name).read_bytes() == (b_dir / name).read_bytes()


class TestRead:
    def test_counts_match_ground_truth(self, sim_result, bundle):
        # Two torque records per job; at most two alps records per run.
        assert len(bundle.torque_records) == 2 * len(sim_result.jobs)
        launch_failures = sum(1 for r in sim_result.runs
                              if r.outcome is Outcome.LAUNCH_FAILURE)
        expected_alps = 2 * (len(sim_result.runs) - launch_failures) \
            + launch_failures
        assert len(bundle.alps_records) == expected_alps

    def test_error_records_only_for_detected(self, sim_result, bundle):
        detected = sum(1 for e in sim_result.faults.events if e.detected)
        # Propagation can only amplify, never invent categories; at least
        # one record per detected event.
        assert len(bundle.error_records) >= detected

    def test_error_records_sorted(self, bundle):
        times = [r.time_s for r in bundle.error_records]
        assert times == sorted(times)

    def test_nodemap_parsed(self, sim_result, bundle):
        assert len(bundle.nodemap) == len(sim_result.machine)
        cname, node_type, vertex = bundle.nodemap[0]
        assert node_type in ("XE", "XK", "SERVICE")
        assert vertex >= 0

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(LogFormatError):
            read_bundle(tmp_path)

    def test_lenient_mode_tolerates_corruption(self, bundle_dir, tmp_path):
        import shutil

        corrupt = tmp_path / "corrupt"
        shutil.copytree(bundle_dir, corrupt)
        with open(corrupt / "syslog.log", "a") as handle:
            handle.write("THIS IS NOT A SYSLOG LINE\n")
        with pytest.raises(LogFormatError):
            read_bundle(corrupt)
        bundle = read_bundle(corrupt, strict=False)
        assert bundle.error_records

    def test_summary_keys(self, bundle):
        summary = bundle.summary()
        assert set(summary) == {"error_records", "torque_records",
                                "alps_records", "nodes"}
