"""Corruption injector: determinism, per-defect behavior, config checks.

The injector exists so the validation suite can *measure* resilience of
the ingest path; these tests pin down the properties that measurement
relies on -- same (bundle, config, seed) means byte-identical damage,
each defect does exactly what its name says, and the manifest is never
touched.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.corruptor import (
    CORRUPTIBLE_FILES,
    DEFECT_KINDS,
    CorruptionConfig,
    CorruptionReport,
    corrupt_bundle,
    corrupt_lines,
)
from repro.logs.alps import parse_alps_line
from repro.logs.bundle import read_bundle
from repro.logs.torque import parse_torque_line
from repro.util.rngs import substream
from repro.util.timeutil import Epoch

EPOCH = Epoch()

_APSYS_LINES = [
    "2013-04-01T00:00:02 apsys apid=7 kind=start batch_id=3.bw "
    "user=user0001 cmd=namd2 nids=0-127",
    "2013-04-01T04:00:02 apsys apid=7 kind=end batch_id=3.bw "
    "user=user0001 cmd=namd2 nids=0-127 exit_code=0 exit_signal=0",
    "2013-04-01T05:00:02 apsys apid=9 kind=start batch_id=4.bw "
    "user=user0002 cmd=vpic nids=128-255",
    "2013-04-01T06:00:02 apsys apid=9 kind=end batch_id=4.bw "
    "user=user0002 cmd=vpic nids=128-255 exit_code=1 exit_signal=0",
]

_TORQUE_LINE = (
    "04/01/2013 12:00:00;S;12345.bw;user=user0042 queue=normal "
    "Resource_List.nodes=128 Resource_List.walltime=04:00:00 "
    "qtime=1364816000 start=1364817600 exec_host=0-127")


def _run(filename: str, lines: list[str], config: CorruptionConfig,
         seed: int = 0) -> tuple[list[str], CorruptionReport]:
    report = CorruptionReport(seed=seed)
    rng = substream(seed, f"test/{filename}")
    return corrupt_lines(filename, list(lines), config, rng, report), report


class TestConfig:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CorruptionConfig(garble_rate=1.5)
        with pytest.raises(ConfigurationError):
            CorruptionConfig(drop_rate=-0.1)

    def test_rates_summing_past_one_rejected(self):
        with pytest.raises(ConfigurationError):
            CorruptionConfig(truncate_rate=0.6, garble_rate=0.6)

    def test_negative_skew_rejected(self):
        with pytest.raises(ConfigurationError):
            CorruptionConfig(skew_max_s=-1.0)

    def test_uniform_splits_evenly(self):
        config = CorruptionConfig.uniform(0.06)
        assert config.total_rate == pytest.approx(0.06)
        assert all(rate == pytest.approx(0.01)
                   for rate in config.rates().values())

    def test_uniform_accepts_overrides(self):
        config = CorruptionConfig.uniform(0.06, skew_max_s=5.0)
        assert config.skew_max_s == 5.0

    def test_uniform_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            CorruptionConfig.uniform(1.5)

    def test_defect_vocabulary_matches_rate_fields(self):
        config = CorruptionConfig()
        assert tuple(config.rates()) == DEFECT_KINDS


class TestDefects:
    def test_zero_rate_is_identity(self):
        out, report = _run("apsys.log", _APSYS_LINES, CorruptionConfig())
        assert out == _APSYS_LINES
        assert report.total_mutations == 0
        assert report.lines_seen == len(_APSYS_LINES)

    def test_truncate_shortens_every_line(self):
        config = CorruptionConfig(truncate_rate=1.0)
        out, report = _run("syslog.log", _APSYS_LINES, config)
        assert all(len(o) < len(i) for o, i in zip(out, _APSYS_LINES))
        assert report.by_file["syslog.log"]["truncate"] == len(_APSYS_LINES)

    def test_duplicate_doubles_the_file(self):
        config = CorruptionConfig(duplicate_rate=1.0)
        out, _ = _run("console.log", _APSYS_LINES, config)
        assert len(out) == 2 * len(_APSYS_LINES)
        assert out[0] == out[1] == _APSYS_LINES[0]

    def test_drop_on_apsys_only_hits_end_records(self):
        config = CorruptionConfig(drop_rate=1.0)
        out, report = _run("apsys.log", _APSYS_LINES, config)
        assert out == [line for line in _APSYS_LINES
                       if " kind=end " not in line]
        assert report.by_file["apsys.log"]["drop"] == 2

    def test_drop_elsewhere_hits_any_line(self):
        config = CorruptionConfig(drop_rate=1.0)
        out, _ = _run("hwerr.log", _APSYS_LINES, config)
        assert out == []

    def test_skew_keeps_lines_strictly_parseable(self):
        config = CorruptionConfig(skew_rate=1.0, skew_max_s=300.0)
        out, _ = _run("apsys.log", _APSYS_LINES, config)
        moved = 0
        for skewed, original in zip(out, _APSYS_LINES):
            record = parse_alps_line(skewed, EPOCH)  # must not raise
            base = parse_alps_line(original, EPOCH)
            assert abs(record.time_s - base.time_s) <= 300.0
            moved += skewed != original
        assert moved > 0

    def test_skew_handles_torque_timestamps(self):
        config = CorruptionConfig(skew_rate=1.0, skew_max_s=600.0)
        out, _ = _run("torque.log", [_TORQUE_LINE] * 5, config, seed=3)
        for line in out:
            parse_torque_line(line, EPOCH)  # must not raise

    def test_reorder_swaps_with_predecessor(self):
        config = CorruptionConfig(reorder_rate=1.0)
        out, _ = _run("syslog.log", ["a", "b"], config)
        assert sorted(out) == ["a", "b"]

    def test_report_as_dict_shape(self):
        config = CorruptionConfig(garble_rate=1.0)
        _, report = _run("syslog.log", _APSYS_LINES, config, seed=11)
        data = report.as_dict()
        assert data["seed"] == 11
        assert data["total_mutations"] == len(_APSYS_LINES)
        assert data["by_file"] == {"syslog.log": {"garble": 4}}


class TestCorruptBundle:
    CONFIG = CorruptionConfig.uniform(0.3)

    def test_damage_is_deterministic(self, bundle_dir, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        report_a = corrupt_bundle(bundle_dir, a, self.CONFIG, seed=5)
        report_b = corrupt_bundle(bundle_dir, b, self.CONFIG, seed=5)
        assert report_a.as_dict() == report_b.as_dict()
        for name in CORRUPTIBLE_FILES:
            assert (a / name).read_bytes() == (b / name).read_bytes()

    def test_seed_changes_the_damage(self, bundle_dir, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        corrupt_bundle(bundle_dir, a, self.CONFIG, seed=5)
        corrupt_bundle(bundle_dir, b, self.CONFIG, seed=6)
        assert any((a / name).read_bytes() != (b / name).read_bytes()
                   for name in CORRUPTIBLE_FILES)

    def test_manifest_is_never_touched(self, bundle_dir, tmp_path):
        out = tmp_path / "damaged"
        corrupt_bundle(bundle_dir, out, self.CONFIG, seed=5)
        assert ((out / "manifest.json").read_bytes()
                == (bundle_dir / "manifest.json").read_bytes())

    def test_refuses_in_place(self, bundle_dir):
        with pytest.raises(ConfigurationError, match="in place"):
            corrupt_bundle(bundle_dir, bundle_dir, self.CONFIG)

    def test_rejects_missing_source(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a bundle"):
            corrupt_bundle(tmp_path / "nope", tmp_path / "out", self.CONFIG)

    def test_lenient_ingest_survives_the_damage(self, bundle_dir, tmp_path):
        out = tmp_path / "damaged"
        report = corrupt_bundle(bundle_dir, out, self.CONFIG, seed=5)
        assert report.total_mutations > 0
        damaged = read_bundle(out, strict=False)
        ingest = damaged.ingest_report
        assert ingest.total_parsed > 0
        # Heavy damage must actually quarantine something.
        assert ingest.total_quarantined > 0
        assert sum(ingest.defects.values()) == ingest.total_quarantined
