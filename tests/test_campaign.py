"""Campaign engine + persistent cache: determinism and fallback.

The contracts under test are the ones the experiments rely on:

* ``run_campaign`` over a process pool returns exactly what the serial
  loop returns, in the same order (per-unit seeding makes units
  independent);
* the disk cache keys on canonicalized config + seed + code salt, so
  equivalent arguments share an entry and any semantic change misses;
* a corrupted cache entry is a *miss* (recompute), never a crash.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import time

import pytest

from repro.campaign import cache as cache_module
from repro.campaign.cache import (
    ResultCache,
    cache_key,
    canonical_params,
    configure_cache,
)
from repro.campaign.engine import configure_engine, resolve_jobs, run_campaign
from repro.experiments import presets
from repro.experiments.sweep import scaling_sweep
from repro.machine.nodetypes import NodeType
from repro.util.rngs import RngFactory
from repro.validation.goldens import canonical_json


def _seeded_unit(value: int, seed: int) -> tuple[int, int]:
    """Module-level so spawn workers can pickle it."""
    rng = RngFactory(seed + value).get("test/unit")
    return value, int(rng.integers(0, 1_000_000))


def _caching_unit(value: int, seed: int) -> tuple[int, bool]:
    """A unit that goes through the worker's process-wide cache."""
    cache = cache_module.get_cache()
    result = cache.get_or_compute("campaign-test",
                                  {"value": value, "seed": seed},
                                  lambda: value * seed)
    return result, cache.enabled


@pytest.fixture()
def isolated_cache(tmp_path):
    """Point the process-wide cache at a throwaway directory."""
    previous = cache_module._cache
    cache = configure_cache(directory=tmp_path, enabled=True)
    cache.stats.reset()
    presets.clear_memo()
    yield cache
    cache_module._cache = previous
    presets.clear_memo()


class TestCanonicalParams:
    def test_integer_valued_float_collapses(self):
        assert canonical_params(120.0) == 120
        assert isinstance(canonical_params(120.0), int)

    def test_fractional_float_survives(self):
        assert canonical_params(0.02) == 0.02

    def test_bool_is_not_an_int(self):
        assert canonical_params(True) is True
        # dict equality says True == 1; the serialized keys must not.
        assert (cache_key("k", {"flag": True})
                != cache_key("k", {"flag": 1}))

    def test_tuples_listify_and_dicts_sort(self):
        assert canonical_params((1, 2.0)) == [1, 2]
        assert (list(canonical_params({"b": 1, "a": 2}))
                == ["a", "b"])

    def test_aliasing_reaches_into_nested_structures(self):
        # 30 vs 30.0 must collapse even deep inside lists/tuples/dicts.
        assert (cache_key("k", {"cfg": {"days": [30, 2.0], "w": (1.0,)}})
                == cache_key("k", {"cfg": {"days": [30.0, 2], "w": [1]}}))

    def test_enum_uses_value(self):
        assert canonical_params(NodeType.XE) == NodeType.XE.value

    def test_unhashable_object_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical_params(object())


class TestCacheKey:
    def test_float_alias_shares_key(self):
        assert (cache_key("k", {"days": 120})
                == cache_key("k", {"days": 120.0}))

    def test_config_changes_key(self):
        base = cache_key("k", {"days": 120, "seed": 1})
        assert cache_key("k", {"days": 90, "seed": 1}) != base

    def test_seed_changes_key(self):
        base = cache_key("k", {"days": 120, "seed": 1})
        assert cache_key("k", {"days": 120, "seed": 2}) != base

    def test_kind_changes_key(self):
        assert cache_key("a", {"x": 1}) != cache_key("b", {"x": 1})

    def test_salt_changes_key(self):
        params = {"x": 1}
        assert (cache_key("k", params, salt="v1")
                != cache_key("k", params, salt="v2"))


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        calls = []
        value = cache.get_or_compute("kind", {"x": 1},
                                     lambda: calls.append(1) or 41)
        again = cache.get_or_compute("kind", {"x": 1},
                                     lambda: calls.append(1) or 42)
        assert value == 41 and again == 41
        assert len(calls) == 1
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "stores": 1, "errors": 0,
            "recomputes": 1}

    def test_disabled_cache_always_computes(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        assert cache.get_or_compute("kind", {}, lambda: 1) == 1
        assert cache.get_or_compute("kind", {}, lambda: 2) == 2
        assert not list(tmp_path.rglob("*.pkl"))

    def test_corrupted_entry_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.get_or_compute("kind", {"x": 1}, lambda: {"answer": 17})
        (entry,) = list(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"not a pickle at all")
        value = cache.get_or_compute("kind", {"x": 1},
                                     lambda: {"answer": 17})
        assert value == {"answer": 17}
        assert cache.stats.errors == 1
        assert cache.stats.misses == 2  # cold miss + corruption miss
        # The bad entry was replaced by a good one.
        found, reread = cache.load(cache_key("kind", {"x": 1}))
        assert found and reread == {"answer": 17}

    def test_values_survive_a_new_cache_instance(self, tmp_path):
        ResultCache(tmp_path, enabled=True).get_or_compute(
            "kind", {"x": 1}, lambda: [1, 2, 3])
        fresh = ResultCache(tmp_path, enabled=True)
        found, value = fresh.load(cache_key("kind", {"x": 1}))
        assert found and value == [1, 2, 3]

    def test_partially_written_entry_is_a_miss(self, tmp_path):
        # A torn write (process killed mid-store) leaves a prefix of a
        # valid pickle: must recompute and replace, never crash.
        cache = ResultCache(tmp_path, enabled=True)
        payload = list(range(1000))
        cache.get_or_compute("kind", {"x": 1}, lambda: payload)
        (entry,) = list(tmp_path.rglob("*.pkl"))
        blob = entry.read_bytes()
        entry.write_bytes(blob[:len(blob) // 2])
        value = cache.get_or_compute("kind", {"x": 1}, lambda: payload)
        assert value == payload
        assert cache.stats.errors == 1
        found, reread = cache.load(cache_key("kind", {"x": 1}))
        assert found and reread == payload

    def test_truncated_to_empty_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.get_or_compute("kind", {"x": 1}, lambda: 7)
        (entry,) = list(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"")
        assert cache.get_or_compute("kind", {"x": 1}, lambda: 7) == 7
        assert cache.stats.errors == 1


class TestEngine:
    def test_serial_matches_parallel(self):
        units = [dict(value=v, seed=123) for v in range(8)]
        serial = run_campaign(_seeded_unit, units, jobs=1)
        parallel = run_campaign(_seeded_unit, units, jobs=4)
        assert serial == parallel
        # Submission order is preserved, not completion order.
        assert [v for v, _ in parallel] == list(range(8))

    def test_empty_units(self):
        assert run_campaign(_seeded_unit, [], jobs=4) == []

    def test_resolve_jobs_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        configure_engine(jobs=None)
        try:
            assert resolve_jobs() == 1
            monkeypatch.setenv("REPRO_JOBS", "3")
            assert resolve_jobs() == 3
            configure_engine(jobs=2)
            assert resolve_jobs() == 2  # configured beats env
            assert resolve_jobs(5) == 5  # explicit beats both
            assert resolve_jobs(0) >= 1  # 0 = all cores
        finally:
            configure_engine(jobs=None)

    def test_configure_rejects_negative(self):
        with pytest.raises(ValueError):
            configure_engine(jobs=-1)


class TestParallelSweep:
    def test_parallel_sweep_identical_to_serial(self):
        kwargs = dict(scales=(500, 1000), runs_per_scale=6, seed=5)
        serial = scaling_sweep(NodeType.XK, jobs=1, **kwargs)
        parallel = scaling_sweep(NodeType.XK, jobs=2, **kwargs)
        assert serial == parallel  # dataclass equality, field for field


class TestNoCacheBypassUnderParallelEngine:
    """REPRO_NO_CACHE must disable caching inside spawn workers too."""

    UNITS = [dict(value=v, seed=3) for v in range(4)]

    def test_env_bypass_reaches_workers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        results = run_campaign(_caching_unit, self.UNITS, jobs=2)
        assert [r[0] for r in results] == [v * 3 for v in range(4)]
        # Every worker saw a disabled cache and nothing hit the disk.
        assert all(enabled is False for _, enabled in results)
        assert not list(tmp_path.rglob("*.pkl"))

    def test_without_bypass_workers_do_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        results = run_campaign(_caching_unit, self.UNITS, jobs=2)
        assert all(enabled is True for _, enabled in results)
        assert len(list(tmp_path.rglob("*.pkl"))) == len(self.UNITS)


def _same_summary(a: dict[str, float], b: dict[str, float]) -> bool:
    if a.keys() != b.keys():
        return False
    return all((math.isnan(v) and math.isnan(b[k])) or v == b[k]
               for k, v in a.items())


class TestPresetCaching:
    DAYS, THINNING, SEED = 1.5, 0.002, 977

    def test_warm_analysis_identical(self, isolated_cache):
        cold = presets.ambient_analysis(days=self.DAYS,
                                        thinning=self.THINNING,
                                        seed=self.SEED)
        assert isolated_cache.stats.hits == 0
        assert isolated_cache.stats.stores > 0
        # Drop the in-process memo so the next call must go to disk.
        presets.clear_memo()
        warm = presets.ambient_analysis(days=self.DAYS,
                                        thinning=self.THINNING,
                                        seed=self.SEED)
        assert isolated_cache.stats.hits > 0
        assert _same_summary(cold.summary(), warm.summary())
        assert len(warm.diagnosed) == len(cold.diagnosed)

    def test_different_seed_is_a_miss(self, isolated_cache):
        presets.ambient_result(days=self.DAYS, thinning=self.THINNING,
                               seed=self.SEED)
        stores_before = isolated_cache.stats.stores
        presets.ambient_result(days=self.DAYS, thinning=self.THINNING,
                               seed=self.SEED + 1)
        assert isolated_cache.stats.stores > stores_before

    def test_cold_and_warm_summaries_byte_identical(self, isolated_cache):
        """The goldens' own serialization sees no cold/warm difference."""
        cold = presets.ambient_analysis(days=self.DAYS,
                                        thinning=self.THINNING,
                                        seed=self.SEED).summary()
        presets.clear_memo()
        warm = presets.ambient_analysis(days=self.DAYS,
                                        thinning=self.THINNING,
                                        seed=self.SEED).summary()
        assert isolated_cache.stats.hits > 0
        assert canonical_json(cold) == canonical_json(warm)


class _KillMidPickle:
    """Pickling this object SIGKILLs the process -- a worker dying in
    the middle of serializing a cache entry, pages already on disk."""

    def __reduce__(self):
        os.kill(os.getpid(), signal.SIGKILL)
        return (int, ())  # unreachable


def _store_bomb(directory: str) -> None:
    """Spawn target: die by SIGKILL mid-way through a cache store."""
    cache = ResultCache(directory, enabled=True)
    # The big list streams real bytes into the staging file before the
    # bomb detonates, so the kill lands mid-write, not pre-write.
    cache.store(cache_key("bomb", {"x": 1}),
                [list(range(100_000)), _KillMidPickle()])


class TestAtomicCacheCommit:
    """A SIGKILL mid-store must never publish a torn entry."""

    def test_sigkill_mid_store_leaves_no_torn_entry(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        good_key = cache_key("good", {"x": 1})
        cache.store(good_key, {"answer": 17})

        context = multiprocessing.get_context("spawn")
        process = context.Process(target=_store_bomb,
                                  args=(str(tmp_path),))
        process.start()
        process.join(60)
        assert process.exitcode == -signal.SIGKILL

        # The bomb's key never became visible...
        found, _ = cache.load(cache_key("bomb", {"x": 1}))
        assert not found
        # ...the pre-existing entry is untouched...
        found, value = cache.load(good_key)
        assert found and value == {"answer": 17}
        # ...and the only residue is an orphaned staging file, which
        # the age-guarded sweep reclaims without racing live stores.
        orphans = list((tmp_path / "objects").glob("*.tmp"))
        assert orphans
        assert cache.sweep_stale(max_age_s=3600.0) == 0
        time.sleep(0.05)
        assert cache.sweep_stale(max_age_s=0.01) == len(orphans)
        assert not list((tmp_path / "objects").glob("*.tmp"))
