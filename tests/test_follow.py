"""Tail-follower crash and rotation cases (``repro.logs.follow``).

The contract under test is the three invariants from the module
docstring: never emit a torn record, re-sync (never read garbage) after
truncation/rotation, and keep line numbers identical to a one-shot
parse of the final file.  The writer failures exercised here are the
realistic ones: a logger truncated and re-grown, a partial trailing
line from a buffering writer, and a writer SIGKILL'd mid-record.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys

from repro.logs.columnar import convert_bundle, load_sidecar
from repro.logs.follow import TailFollower


def follower_for(tmp_path, filename="syslog.log", **kwargs):
    return TailFollower(tmp_path, files=(filename,), **kwargs)


def append(path, text):
    with open(path, "a") as handle:
        handle.write(text)


class TestBasicTailing:
    def test_absent_file_is_quietly_empty(self, tmp_path):
        follower = follower_for(tmp_path)
        assert follower.poll() == []
        assert follower.resyncs == 0

    def test_complete_lines_emitted_once(self, tmp_path):
        path = tmp_path / "syslog.log"
        append(path, "one\ntwo\n")
        follower = follower_for(tmp_path)
        [batch] = follower.poll()
        assert batch.lines == ["one", "two"]
        assert batch.first_lineno == 1
        assert not batch.resynced
        assert follower.poll() == []  # nothing new -> no batch

    def test_line_numbers_continue_across_batches(self, tmp_path):
        path = tmp_path / "syslog.log"
        follower = follower_for(tmp_path)
        append(path, "a\nb\n")
        [first] = follower.poll()
        append(path, "c\n")
        [second] = follower.poll()
        assert first.first_lineno == 1
        assert second.first_lineno == 3
        assert second.lines == ["c"]


class TestTornRecords:
    def test_partial_trailing_line_held_back(self, tmp_path):
        path = tmp_path / "syslog.log"
        follower = follower_for(tmp_path)
        append(path, "complete\npartial-without-newl")
        [batch] = follower.poll()
        assert batch.lines == ["complete"]
        # The partial tail is invisible until its newline lands, then
        # the whole line is emitted exactly once.
        assert follower.poll() == []
        append(path, "ine\n")
        [batch] = follower.poll()
        assert batch.lines == ["partial-without-newline"]
        assert batch.first_lineno == 2

    def test_only_partial_data_yields_no_batch(self, tmp_path):
        path = tmp_path / "syslog.log"
        follower = follower_for(tmp_path)
        append(path, "no newline at all")
        assert follower.poll() == []
        assert follower.bytes_read == 0

    def test_sigkilled_writer_never_tears_a_record(self, tmp_path):
        """A real writer process SIGKILL'd mid-record.

        The child writes two complete lines, then a partial record
        (flushed, no newline) and blocks; we SIGKILL it there.  The
        follower must emit exactly the complete lines, never the torn
        tail -- and when a restarted writer completes the record, it
        arrives whole with the right line number.
        """
        path = tmp_path / "syslog.log"
        script = (
            "import sys, time\n"
            f"handle = open({str(path)!r}, 'w')\n"
            "handle.write('line-1\\nline-2\\n')\n"
            "handle.write('torn-rec')\n"
            "handle.flush()\n"
            "print('ready', flush=True)\n"
            "time.sleep(60)\n"
        )
        proc = subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE, text=True)
        try:
            assert proc.stdout.readline().strip() == "ready"
            follower = follower_for(tmp_path)
            [batch] = follower.poll()
            assert batch.lines == ["line-1", "line-2"]
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
            proc.stdout.close()
        # Post-mortem polls stay clean: the torn tail is still held.
        assert follower.poll() == []
        # A restarted writer completes the record in place.
        append(path, "ord-finished\n")
        [batch] = follower.poll()
        assert batch.lines == ["torn-record-finished"]
        assert batch.first_lineno == 3
        assert follower.resyncs == 0


class TestGenerations:
    def test_truncate_and_regrow_resyncs(self, tmp_path):
        path = tmp_path / "syslog.log"
        follower = follower_for(tmp_path)
        append(path, "old-1\nold-2\nold-3\n")
        follower.poll()
        # Writer truncates and starts over (logrotate copytruncate).
        path.write_text("new-1\n")
        [batch] = follower.poll()
        assert batch.resynced
        assert batch.lines == ["new-1"]
        assert batch.first_lineno == 1
        assert follower.resyncs == 1
        # Tailing continues normally on the new generation.
        append(path, "new-2\n")
        [batch] = follower.poll()
        assert not batch.resynced
        assert batch.lines == ["new-2"]
        assert batch.first_lineno == 2

    def test_delete_and_recreate_resyncs(self, tmp_path):
        path = tmp_path / "syslog.log"
        follower = follower_for(tmp_path)
        append(path, "gen-a\n")
        follower.poll()
        path.unlink()
        assert follower.poll() == []  # the deletion itself counts a resync
        assert follower.resyncs == 1
        append(path, "gen-b-1\ngen-b-2\n")
        [batch] = follower.poll()
        assert batch.lines == ["gen-b-1", "gen-b-2"]
        assert batch.first_lineno == 1

    def test_generation_hook_fires_with_kind(self, tmp_path):
        calls = []
        path = tmp_path / "syslog.log"
        follower = follower_for(
            tmp_path,
            on_generation_change=lambda d, f, k: calls.append((f, k)))
        append(path, "aaaa\n")
        follower.poll()
        path.write_text("b\n")  # shorter -> truncated
        follower.poll()
        assert calls == [("syslog.log", "truncated")]
        # Same-size in-place rewrite with a moved mtime, fully consumed:
        # tailing cannot replay it, so the hook must fire as "rewritten".
        follower.poll()
        stat = path.stat()
        path.write_text("c\n")
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
        follower.poll()
        assert calls[-1] == ("syslog.log", "rewritten")

    def test_hook_failure_does_not_stop_tailing(self, tmp_path):
        def bad_hook(directory, filename, kind):
            raise RuntimeError("boom")

        path = tmp_path / "syslog.log"
        follower = follower_for(tmp_path, on_generation_change=bad_hook)
        append(path, "one\n")
        follower.poll()
        path.write_text("two-longer-than-before... no wait, shorter")
        path.write_text("x\n")
        [batch] = follower.poll()
        assert batch.resynced and batch.lines == ["x"]


class TestColumnarIntegration:
    def test_rewrite_invalidates_stale_sidecar(self, bundle_dir, tmp_path):
        """The default hook closes the columnar staleness blind spot.

        A same-size mtime-preserving rewrite passes the sidecar's stat
        shortcut; when the follower observes the generation change it
        digest-verifies, which must invalidate the lying sidecar.
        """
        dest = tmp_path / "bundle"
        shutil.copytree(bundle_dir, dest)
        convert_bundle(str(dest))
        follower = TailFollower(dest)
        follower.poll()  # consume everything: offsets == sizes
        path = dest / "console.log"
        stat = path.stat()
        data = path.read_bytes()
        mutated = data.replace(b"0", b"1", 1)
        assert mutated != data and len(mutated) == len(data)
        path.write_bytes(mutated)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
        assert load_sidecar(str(dest)) is not None
        follower.poll()
        assert follower.resyncs == 1
        assert load_sidecar(str(dest)) is None


class TestAgainstLiveAppends:
    def test_interleaved_appends_reassemble_the_file(self, tmp_path):
        """Arbitrary append chunking: emitted lines == final file lines."""
        path = tmp_path / "syslog.log"
        follower = follower_for(tmp_path)
        content = "".join(f"line-{i}\n" for i in range(50))
        emitted = []
        pos = 0
        for chunk in (3, 17, 1, 40, 0, 95, 11):
            append(path, content[pos:pos + chunk])
            pos += chunk
            for batch in follower.poll():
                emitted.extend(batch.lines)
        append(path, content[pos:])
        for batch in follower.poll():
            emitted.extend(batch.lines)
        assert emitted == content.splitlines()
