"""Thread safety of the observability layer.

The serving daemon writes metrics from many handler threads at once, so
the registry's contract is *exactness under contention*: N threads each
incrementing M times must land exactly N*M -- ``dict.get`` + store
without the lock drops increments whenever the GIL switches threads
between the read and the write.  Scoping and tracing are *thread-local*
by design: a scope or tracer activated in one thread must never capture
(or be corrupted by) concurrent work in another.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry, get_registry, scoped_registry
from repro.obs.tracing import Tracer, current_tracer, span, tracing

THREADS = 8
INCREMENTS = 5_000


def _hammer(target, barrier: threading.Barrier) -> list[threading.Thread]:
    workers = [threading.Thread(target=target, name=f"hammer-{i}")
               for i in range(THREADS)]
    for worker in workers:
        worker.start()
    return workers


class TestRegistryUnderContention:
    def test_no_lost_counter_increments(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def work():
            barrier.wait()  # maximize overlap
            for _ in range(INCREMENTS):
                registry.counter("stress_total")
                registry.counter("stress_labeled_total", endpoint="/x")

        for worker in _hammer(work, barrier):
            worker.join()
        assert registry.counter_value("stress_total") \
            == THREADS * INCREMENTS
        assert registry.counter_value("stress_labeled_total",
                                      endpoint="/x") \
            == THREADS * INCREMENTS

    def test_no_lost_histogram_observations(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def work():
            barrier.wait()
            for i in range(INCREMENTS):
                registry.observe("stress_seconds", (i % 7) / 100.0)

        for worker in _hammer(work, barrier):
            worker.join()
        snap = registry.snapshot()["histograms"]["stress_seconds"]
        assert snap["count"] == THREADS * INCREMENTS
        assert sum(snap["buckets"].values()) == THREADS * INCREMENTS

    def test_scrape_races_are_internally_consistent(self):
        """A snapshot taken mid-storm must have count == sum(buckets):
        sum/count/buckets move together or not at all."""
        registry = MetricsRegistry()
        stop = threading.Event()
        barrier = threading.Barrier(THREADS)

        def work():
            barrier.wait()
            for i in range(INCREMENTS):
                registry.observe("race_seconds", (i % 5) / 50.0)
            stop.set()

        workers = _hammer(work, barrier)
        scrapes = 0
        while not stop.is_set():
            snap = registry.snapshot()
            hist = snap["histograms"].get("race_seconds")
            if hist is not None:
                assert hist["count"] == sum(hist["buckets"].values())
                scrapes += 1
            registry.render_prometheus()  # must not raise mid-storm
        for worker in workers:
            worker.join()
        assert registry.counter_value("absent") == 0.0  # reads stay exact


class TestThreadLocalScoping:
    def test_scope_does_not_capture_other_threads(self):
        """A scope pushed on this thread must not swallow writes made by
        a concurrent thread -- those belong to the shared base."""
        base_before = get_registry().counter_value("cross_thread_total")
        seen_in_worker = {}

        def worker():
            # No scope active on *this* thread: writes go to the base.
            seen_in_worker["registry"] = get_registry()
            get_registry().counter("cross_thread_total")

        with scoped_registry() as scoped:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            scoped.counter("scoped_only_total")
            assert scoped.counter_value("cross_thread_total") == 0.0
        assert seen_in_worker["registry"] is not scoped
        base = get_registry()
        assert base.counter_value("cross_thread_total") == base_before + 1
        assert base.counter_value("scoped_only_total") == 0.0

    def test_concurrent_scopes_are_independent(self):
        totals = {}
        barrier = threading.Barrier(2)

        def worker(name: str, amount: int):
            with scoped_registry() as registry:
                barrier.wait()
                for _ in range(amount):
                    registry_now = get_registry()
                    assert registry_now is registry
                    registry_now.counter("per_thread_total")
                totals[name] = registry.counter_value("per_thread_total")

        threads = [threading.Thread(target=worker, args=("a", 1000)),
                   threading.Thread(target=worker, args=("b", 2500))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert totals == {"a": 1000.0, "b": 2500.0}


class TestThreadLocalTracing:
    def test_tracer_is_invisible_to_other_threads(self):
        """Handler threads must see no tracer while the main thread
        traces: their span() calls no-op instead of braiding unrelated
        request spans into one tree."""
        observed = {}

        def worker():
            observed["tracer"] = current_tracer()
            with span("worker-op") as sp:
                observed["span"] = sp

        tracer = Tracer()
        with tracing(tracer):
            with span("main-op"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        assert observed["tracer"] is None
        (root,) = tracer.roots
        assert root.name == "main-op"
        assert root.children == []  # the worker's span never landed here

    def test_concurrent_tracers_build_disjoint_trees(self):
        trees = {}
        barrier = threading.Barrier(4)

        def worker(name: str):
            tracer = Tracer()
            with tracing(tracer):
                barrier.wait()
                with span(f"{name}-outer"):
                    for i in range(50):
                        with span(f"{name}-inner", i=i):
                            pass
            trees[name] = tracer

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for name, tracer in trees.items():
            (root,) = tracer.roots
            assert root.name == f"{name}-outer"
            assert len(root.children) == 50
            assert all(child.name == f"{name}-inner"
                       for child in root.children)
