"""Miscellaneous API contract tests: error types, registries, renderers."""

import pytest

from repro.errors import (
    AnalysisError,
    CNameError,
    ConfigurationError,
    LogFormatError,
    ReproError,
    SchedulingError,
    SimulationError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, CNameError, LogFormatError,
                    SchedulingError, SimulationError, AnalysisError):
            assert issubclass(exc, ReproError)

    def test_log_format_error_location(self):
        err = LogFormatError("bad line", source="syslog", lineno=17,
                             line="x")
        assert "syslog:17" in str(err)
        assert err.lineno == 17

    def test_log_format_error_without_location(self):
        assert str(LogFormatError("oops")) == "oops"


class TestExperimentRegistry:
    def test_all_design_ids_present(self):
        from repro.experiments.runner import EXPERIMENTS

        expected = {f"T{i}" for i in range(1, 7)} \
            | {f"F{i}" for i in range(1, 13)} \
            | {f"A{i}" for i in range(1, 7)}
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_raises(self):
        from repro.experiments.runner import run_experiment

        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("T99")

    def test_every_runner_documented(self):
        from repro.experiments.runner import EXPERIMENTS

        for fn in EXPERIMENTS.values():
            assert fn.__doc__, fn.__name__


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.core
        import repro.faults
        import repro.logs
        import repro.machine
        import repro.sim
        import repro.stats
        import repro.util
        import repro.workload

        for module in (repro.core, repro.faults, repro.logs, repro.machine,
                       repro.sim, repro.stats, repro.util, repro.workload):
            for name in module.__all__:
                assert getattr(module, name) is not None, \
                    f"{module.__name__}.{name}"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestRenderersMisc:
    def test_render_scaling_min_scale(self, analysis):
        from repro.core.report import render_scaling

        full = render_scaling(analysis, "XE")
        trimmed = render_scaling(analysis, "XE", min_scale=64)
        assert len(trimmed.splitlines()) <= len(full.splitlines())

    def test_render_workload_top(self, analysis):
        from repro.core.report import render_workload

        short = render_workload(analysis, top=2)
        assert len(short.splitlines()) <= 4

    def test_experiment_result_render(self):
        from repro.experiments.comparison import Comparison
        from repro.experiments.runner import ExperimentResult

        result = ExperimentResult("T0", "demo", "a  b\n-  -\n1  2",
                                  [Comparison("T0", "m", 1.0, 0.9)])
        text = result.render()
        assert "== T0: demo ==" in text
        assert "paper vs measured" in text
