"""Tests for the detection-gap counterfactual experiment."""

import pytest

from repro.experiments.detection import (
    DetectionGap,
    detection_gap_experiment,
)


class TestDetectionGapMath:
    def test_shares(self):
        gap = DetectionGap(label="x", xe_kills=100, xe_silent=3,
                           xk_kills=40, xk_silent=12)
        assert gap.xe_silent_share == pytest.approx(0.03)
        assert gap.xk_silent_share == pytest.approx(0.3)
        assert gap.gap_factor == pytest.approx(10.0)

    def test_gap_factor_degenerate(self):
        clean = DetectionGap("x", 10, 0, 10, 0)
        assert clean.gap_factor == 1.0
        xe_clean = DetectionGap("x", 10, 0, 10, 5)
        assert xe_clean.gap_factor == float("inf")

    def test_empty_partitions(self):
        empty = DetectionGap("x", 0, 0, 0, 0)
        assert empty.xe_silent_share == 0.0
        assert empty.xk_silent_share == 0.0


class TestCounterfactual:
    @pytest.fixture(scope="class")
    def gaps(self):
        return detection_gap_experiment(days=150.0, workload_thinning=0.04,
                                        seed=33)

    def test_default_shows_xk_gap(self, gaps):
        default = gaps["default"]
        assert default.xk_kills > 10
        assert default.xk_silent_share > default.xe_silent_share

    def test_improved_detection_closes_gap(self, gaps):
        default, improved = gaps["default"], gaps["improved"]
        assert improved.xk_silent_share <= default.xk_silent_share

    def test_xe_unaffected_by_counterfactual(self, gaps):
        default, improved = gaps["default"], gaps["improved"]
        # XE detection was not changed; its silent share stays put
        # (same seed, same fault stream shape).
        assert improved.xe_silent_share == pytest.approx(
            default.xe_silent_share, abs=0.05)
