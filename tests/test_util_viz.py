"""Tests for ASCII visualization helpers."""

import pytest

from repro.util.viz import bar_chart, cdf_plot, scatter_curve, sparkline


class TestSparkline:
    def test_monotone(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▅█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_preserved(self):
        assert len(sparkline(range(17))) == 17


class TestBarChart:
    def test_alignment(self):
        chart = bar_chart(["aa", "b"], [2.0, 4.0], width=4)
        lines = chart.splitlines()
        assert lines[0].startswith("aa")
        assert "████" in lines[1]
        assert "██" in lines[0]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_zero_values_ok(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in chart

    def test_unit_suffix(self):
        assert "5h" in bar_chart(["a"], [5.0], unit="h")


class TestCdfPlot:
    def test_shape(self):
        plot = cdf_plot([1, 2, 3, 4, 5], width=20, height=5)
        lines = plot.splitlines()
        assert len(lines) == 5 + 3  # header + grid + rule + axis
        assert "•" in plot

    def test_log_scale_for_wide_range(self):
        plot = cdf_plot([1, 10, 100, 10000])
        assert "log x" in plot

    def test_linear_for_narrow_range(self):
        plot = cdf_plot([1, 2, 3])
        assert "log" not in plot

    def test_too_few_values(self):
        with pytest.raises(ValueError):
            cdf_plot([1.0])


class TestScatterCurve:
    def test_contains_points(self):
        plot = scatter_curve([1, 2, 3], [1, 4, 9], label="p vs n")
        assert "o" in plot
        assert "p vs n" in plot

    def test_bounds_in_footer(self):
        plot = scatter_curve([0, 10], [0.0, 0.5])
        assert "x: 0..10" in plot

    def test_mismatched_rejected(self):
        with pytest.raises(ValueError):
            scatter_curve([1], [1, 2])
