"""Tests for the checkpoint/restart planning module."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.checkpointing import (
    daly_interval,
    hazard_from_probability,
    plan_checkpointing,
    young_interval,
)
from repro.errors import AnalysisError


class TestHazard:
    def test_inversion(self):
        hazard = hazard_from_probability(0.162, 4.0)
        assert 1 - math.exp(-hazard * 4.0) == pytest.approx(0.162)

    def test_zero_probability(self):
        assert hazard_from_probability(0.0, 10.0) == 0.0

    def test_bounds(self):
        with pytest.raises(AnalysisError):
            hazard_from_probability(1.0, 1.0)
        with pytest.raises(AnalysisError):
            hazard_from_probability(0.5, 0.0)


class TestIntervals:
    def test_young_formula(self):
        assert young_interval(10000.0, 50.0) == pytest.approx(
            math.sqrt(2 * 50 * 10000))

    def test_daly_close_to_young_for_small_cost(self):
        mtbf = 100_000.0
        young = young_interval(mtbf, 10.0)
        daly = daly_interval(mtbf, 10.0)
        assert daly == pytest.approx(young, rel=0.1)

    def test_daly_degenerate_regime(self):
        # Checkpoint cost comparable to MTBF: clamp, don't explode.
        assert daly_interval(100.0, 300.0) == 100.0

    def test_invalid_rejected(self):
        with pytest.raises(AnalysisError):
            young_interval(0.0, 10.0)
        with pytest.raises(AnalysisError):
            daly_interval(100.0, 0.0)

    @given(st.floats(1e3, 1e7), st.floats(1.0, 600.0))
    @settings(max_examples=50, deadline=None)
    def test_young_scaling_property(self, mtbf, cost):
        # Interval grows with both MTBF and cost, sublinearly.
        base = young_interval(mtbf, cost)
        assert young_interval(4 * mtbf, cost) == pytest.approx(2 * base)
        assert young_interval(mtbf, 4 * cost) == pytest.approx(2 * base)


class TestPlan:
    def test_optimal_near_minimum(self):
        """The default (Daly) interval beats nearby alternatives."""
        mtbf = 50_000.0
        cost = 300.0
        optimal = plan_checkpointing(mtbf, cost)
        worse_short = plan_checkpointing(mtbf, cost,
                                         interval_s=optimal.interval_s / 4)
        worse_long = plan_checkpointing(mtbf, cost,
                                        interval_s=optimal.interval_s * 4)
        assert optimal.expected_inflation <= worse_short.expected_inflation
        assert optimal.expected_inflation <= worse_long.expected_inflation

    def test_inflation_above_one(self):
        plan = plan_checkpointing(100_000.0, 300.0)
        assert plan.expected_inflation > 1.0
        assert plan.overhead_percent > 0.0

    def test_reliable_machine_low_overhead(self):
        reliable = plan_checkpointing(1e7, 300.0)
        flaky = plan_checkpointing(1e4, 300.0)
        assert reliable.overhead_percent < flaky.overhead_percent

    def test_bad_interval_rejected(self):
        with pytest.raises(AnalysisError):
            plan_checkpointing(1000.0, 10.0, interval_s=-5.0)
