"""Tests for dimension-ordered torus routing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.routing import (
    Link,
    job_link_set,
    link_exposure,
    route,
    route_links,
)
from repro.machine.topology import TorusTopology

TORUS = TorusTopology(dims=(6, 6, 6), n_vertices=216)


class TestRoute:
    def test_self_route_trivial(self):
        assert route(TORUS, 7, 7) == [7]

    def test_route_endpoints(self):
        path = route(TORUS, 0, 215)
        assert path[0] == 0
        assert path[-1] == 215

    def test_route_length_is_distance(self):
        for src, dst in [(0, 1), (0, 215), (13, 99), (100, 101)]:
            path = route(TORUS, src, dst)
            assert len(path) - 1 == TORUS.distance(src, dst)

    def test_consecutive_hops_adjacent(self):
        path = route(TORUS, 3, 187)
        for a, b in zip(path, path[1:]):
            ca, cb = TORUS.coords[a], TORUS.coords[b]
            diff = sum(min(abs(int(x) - int(y)),
                           TORUS.dims[i] - abs(int(x) - int(y)))
                       for i, (x, y) in enumerate(zip(ca, cb)))
            assert diff == 1

    def test_dimension_order(self):
        # X changes first, then Y, then Z.
        path = route(TORUS, 0, 0 + 2 + 6 * 2 + 36 * 2)  # (2,2,2)
        xs = [int(TORUS.coords[v][0]) for v in path]
        # Once X reaches its target it never changes again.
        settled = xs.index(2)
        assert all(x == 2 for x in xs[settled:])

    def test_wraps_shorter_way(self):
        # From x=0 to x=5 on a 6-ring: one hop backwards.
        src, dst = 0, 5
        assert len(route(TORUS, src, dst)) == 2

    @given(st.integers(0, 215), st.integers(0, 215))
    @settings(max_examples=80, deadline=None)
    def test_route_length_property(self, src, dst):
        assert len(route(TORUS, src, dst)) - 1 == TORUS.distance(src, dst)


class TestRouteLinks:
    def test_link_count_matches_hops(self):
        links = route_links(TORUS, 3, 187)
        assert len(links) == TORUS.distance(3, 187)

    def test_reverse_route_same_links(self):
        # Same shorter arcs both ways (no ties on odd splits).
        forward = set(route_links(TORUS, 1, 3))
        backward = set(route_links(TORUS, 3, 1))
        assert forward == backward

    def test_link_axis_validation(self):
        with pytest.raises(ValueError):
            Link(vertex=0, axis=5)


class TestJobLinkSet:
    def test_single_vertex_empty(self):
        assert job_link_set(TORUS, [5]) == frozenset()

    def test_pair_exact(self):
        links = job_link_set(TORUS, [0, 3])
        assert links == frozenset(route_links(TORUS, 0, 3))

    def test_sampled_superset_of_pairwise_subset(self):
        vertices = list(range(0, 216, 5))
        sampled = job_link_set(TORUS, vertices, max_pairs=400,
                               rng=np.random.default_rng(1))
        # Any specific pair's links should mostly be covered.
        some = route_links(TORUS, vertices[0], vertices[1])
        assert len(sampled) > len(some)

    def test_compact_block_fewer_links_than_spread(self):
        compact = job_link_set(TORUS, [0, 1, 2, 3])
        spread = job_link_set(TORUS, [0, 50, 120, 200])
        assert len(compact) < len(spread)


class TestLinkExposure:
    def test_on_path_exposed(self):
        # Job spanning x=0..3 at y=z=0; failure at x=2 (on the path).
        assert link_exposure(TORUS, [0, 3], 2)

    def test_far_away_not_exposed(self):
        # Failure deep in another plane.
        far = 5 + 6 * 5 + 36 * 5
        assert not link_exposure(TORUS, [0, 1], far)

    def test_single_vertex_never_exposed(self):
        assert not link_exposure(TORUS, [0], 1)
