"""Tests for temporal tupling and spatial coalescing."""

from hypothesis import given, settings, strategies as st

from repro.core.config import LogDiverConfig
from repro.core.filtering import (
    filter_errors,
    spatial_coalescing,
    temporal_tupling,
)
from repro.core.ingest import ClassifiedError
from repro.faults.taxonomy import ErrorCategory


def err(time, component="c0-0c0s0n0", category=ErrorCategory.MCE):
    return ClassifiedError(time_s=float(time), source="hwerrlog",
                           component=component, category=category,
                           message="x")


class TestTupling:
    def test_burst_merges(self):
        errors = [err(0), err(10), err(20)]
        tuples = temporal_tupling(errors, window_s=60.0)
        assert len(tuples) == 1
        assert tuples[0].count == 3
        assert tuples[0].start_s == 0 and tuples[0].end_s == 20

    def test_gap_splits(self):
        errors = [err(0), err(10), err(200)]
        tuples = temporal_tupling(errors, window_s=60.0)
        assert [t.count for t in tuples] == [2, 1]

    def test_chaining_within_window(self):
        # Each gap is 50 < 60, total span 150 > 60: still one tuple.
        errors = [err(0), err(50), err(100), err(150)]
        tuples = temporal_tupling(errors, window_s=60.0)
        assert len(tuples) == 1

    def test_different_components_never_merge(self):
        errors = [err(0, "c0-0c0s0n0"), err(1, "c0-0c0s0n1")]
        assert len(temporal_tupling(errors, 60.0)) == 2

    def test_different_categories_never_merge(self):
        errors = [err(0), err(1, category=ErrorCategory.DRAM_UNCORRECTABLE)]
        assert len(temporal_tupling(errors, 60.0)) == 2

    def test_empty(self):
        assert temporal_tupling([], 60.0) == []

    @given(st.lists(st.floats(0, 10000, allow_nan=False), min_size=1,
                    max_size=60),
           st.floats(0.1, 500))
    @settings(max_examples=60, deadline=None)
    def test_counts_conserved(self, times, window):
        errors = [err(t) for t in times]
        tuples = temporal_tupling(errors, window)
        assert sum(t.count for t in tuples) == len(errors)

    @given(st.lists(st.floats(0, 10000, allow_nan=False), min_size=2,
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_inter_tuple_gaps_exceed_window(self, times):
        window = 50.0
        tuples = sorted(temporal_tupling([err(t) for t in times], window),
                        key=lambda t: t.start_s)
        for a, b in zip(tuples, tuples[1:]):
            assert b.start_s - a.end_s > window


class TestCoalescing:
    def test_storm_across_components_merges(self):
        errors = [err(0, "c0-0c0s0g0", ErrorCategory.GEMINI_LINK),
                  err(30, "c0-0c0s1g0", ErrorCategory.GEMINI_LINK),
                  err(60, "c0-0c0s2g1", ErrorCategory.GEMINI_LINK)]
        tuples = temporal_tupling(errors, 60.0)
        clusters = spatial_coalescing(tuples, 120.0)
        assert len(clusters) == 1
        assert clusters[0].component_count == 3
        assert clusters[0].record_count == 3

    def test_distant_storms_stay_apart(self):
        errors = [err(0, "a", ErrorCategory.GEMINI_LINK),
                  err(10000, "b", ErrorCategory.GEMINI_LINK)]
        clusters = spatial_coalescing(temporal_tupling(errors, 60.0), 120.0)
        assert len(clusters) == 2

    def test_categories_never_mix(self):
        errors = [err(0, "a", ErrorCategory.MCE),
                  err(1, "b", ErrorCategory.GEMINI_LINK)]
        clusters = spatial_coalescing(temporal_tupling(errors, 60.0), 120.0)
        assert len(clusters) == 2

    def test_cluster_ids_chronological(self):
        errors = [err(5000, "a"), err(0, "b"), err(10000, "c")]
        clusters = spatial_coalescing(temporal_tupling(errors, 60.0), 120.0)
        assert [c.cluster_id for c in clusters] == [0, 1, 2]
        starts = [c.start_s for c in clusters]
        assert starts == sorted(starts)

    @given(st.lists(
        st.tuples(st.floats(0, 50000, allow_nan=False),
                  st.sampled_from(["a", "b", "c"]),
                  st.sampled_from([ErrorCategory.MCE,
                                   ErrorCategory.GEMINI_LINK])),
        min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_records_conserved_through_both_stages(self, specs):
        errors = [err(t, comp, cat) for t, comp, cat in specs]
        tuples = temporal_tupling(errors, 60.0)
        clusters = spatial_coalescing(tuples, 120.0)
        assert sum(c.record_count for c in clusters) == len(errors)
        assert len(clusters) <= len(tuples) <= len(errors)


class TestFilterErrors:
    def test_stats_consistent(self):
        errors = [err(i * 10) for i in range(20)]
        clusters, stats = filter_errors(errors, LogDiverConfig())
        assert stats.raw_records == 20
        assert stats.clusters == len(clusters)
        assert stats.total_ratio >= 1.0

    def test_empty_stats(self):
        clusters, stats = filter_errors([], LogDiverConfig())
        assert clusters == []
        assert stats.tupling_ratio == 0.0
