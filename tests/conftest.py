"""Shared fixtures.

Expensive artifacts (a simulated scenario, its log bundle, its analysis)
are session-scoped: many test modules read them, none mutates them.
"""

from __future__ import annotations

import pytest

from repro import LogDiver, read_bundle, write_bundle
from repro.machine import MachineBlueprint, build_machine
from repro.sim import Scenario, small_scenario


@pytest.fixture(scope="session")
def tiny_machine():
    """A 2-cabinet machine: 144 XE + 24 XK + 24 service nodes."""
    return build_machine(MachineBlueprint(n_xe=144, n_xk=24, n_service=24))


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """A busy small scenario: 5% machine, 90 days, elevated workload.

    Sized so every outcome class and several error categories actually
    occur, while the whole thing simulates in a few seconds.
    """
    return small_scenario(days=90.0, machine_scale=0.05,
                          workload_thinning=0.01, seed=20150622)


@pytest.fixture(scope="session")
def sim_result(scenario):
    return scenario.run()


@pytest.fixture(scope="session")
def bundle_dir(sim_result, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bundle")
    write_bundle(sim_result, directory, seed=1)
    return directory


@pytest.fixture(scope="session")
def bundle(bundle_dir):
    return read_bundle(bundle_dir)


@pytest.fixture(scope="session")
def analysis(bundle):
    return LogDiver().analyze(bundle)
