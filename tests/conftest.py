"""Shared fixtures.

Expensive artifacts (a simulated scenario, its log bundle, its analysis)
are session-scoped: many test modules read them, none mutates them.
"""

from __future__ import annotations

import pytest

from repro import LogDiver, paper_scenario, read_bundle, write_bundle
from repro.logs.columnar import convert_bundle
from repro.machine import MachineBlueprint, build_machine
from repro.sim import Scenario, small_scenario


@pytest.fixture(scope="session")
def tiny_machine():
    """A 2-cabinet machine: 144 XE + 24 XK + 24 service nodes."""
    return build_machine(MachineBlueprint(n_xe=144, n_xk=24, n_service=24))


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """A busy small scenario: 5% machine, 90 days, elevated workload.

    Sized so every outcome class and several error categories actually
    occur, while the whole thing simulates in a few seconds.
    """
    return small_scenario(days=90.0, machine_scale=0.05,
                          workload_thinning=0.01, seed=20150622)


@pytest.fixture(scope="session")
def sim_result(scenario):
    return scenario.run()


@pytest.fixture(scope="session")
def bundle_dir(sim_result, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bundle")
    write_bundle(sim_result, directory, seed=1)
    return directory


@pytest.fixture(scope="session")
def bundle(bundle_dir):
    return read_bundle(bundle_dir)


@pytest.fixture(scope="session")
def analysis(bundle):
    return LogDiver().analyze(bundle)


@pytest.fixture(scope="session")
def midsize_result():
    """A 30-day slice of the full paper machine (thousands of runs).

    The heavyweight sibling of ``sim_result``: big enough for
    integration and serving/load tests to be meaningful, built exactly
    once per test run.  Tests must not mutate it or its bundle.
    """
    return paper_scenario(days=30.0, workload_thinning=0.02,
                          seed=101).run()


@pytest.fixture(scope="session")
def midsize_bundle_dir(midsize_result, tmp_path_factory):
    """The mid-size bundle on disk, with its columnar sidecar built.

    The sidecar makes re-reads memory-mapped column loads -- the shape
    the serving daemon sees in production, and much cheaper for every
    test that re-opens this bundle.
    """
    directory = tmp_path_factory.mktemp("midsize-bundle")
    write_bundle(midsize_result, directory, seed=101)
    convert_bundle(directory)
    return directory


@pytest.fixture(scope="session")
def midsize_analysis(midsize_bundle_dir):
    return LogDiver().analyze(read_bundle(midsize_bundle_dir))
