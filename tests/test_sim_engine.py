"""Tests for the DES engine and exit-code mapping."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventQueue
from repro.sim.outcomes import (
    LAUNCH_FAILURE_EXIT,
    SIGKILL_EXIT,
    WALLTIME_EXIT,
    exit_code_for,
)
from repro.workload.jobs import Outcome


class TestEventQueue:
    def test_dispatch_order(self):
        eq = EventQueue()
        log = []
        eq.schedule(5.0, lambda: log.append("b"))
        eq.schedule(1.0, lambda: log.append("a"))
        eq.schedule(9.0, lambda: log.append("c"))
        eq.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        eq = EventQueue()
        log = []
        for label in "abc":
            eq.schedule(1.0, lambda l=label: log.append(l))
        eq.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances(self):
        eq = EventQueue()
        seen = []
        eq.schedule(3.0, lambda: seen.append(eq.now))
        eq.run()
        assert seen == [3.0]
        assert eq.now == 3.0

    def test_schedule_in_past_rejected(self):
        eq = EventQueue()
        eq.schedule(5.0, lambda: eq.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError):
            eq.run()

    def test_schedule_after(self):
        eq = EventQueue()
        fired = []
        eq.schedule(2.0, lambda: eq.schedule_after(3.0,
                                                   lambda: fired.append(eq.now)))
        eq.run()
        assert fired == [5.0]

    def test_cancel(self):
        eq = EventQueue()
        fired = []
        handle = eq.schedule(1.0, lambda: fired.append("x"))
        eq.cancel(handle)
        eq.run()
        assert fired == []

    def test_run_until(self):
        eq = EventQueue()
        fired = []
        eq.schedule(1.0, lambda: fired.append(1))
        eq.schedule(10.0, lambda: fired.append(10))
        dispatched = eq.run(until=5.0)
        assert dispatched == 1
        assert eq.now == 5.0
        eq.run()
        assert fired == [1, 10]

    def test_events_scheduled_during_run(self):
        eq = EventQueue()
        log = []

        def first():
            log.append("first")
            eq.schedule(eq.now + 1, lambda: log.append("second"))

        eq.schedule(0.0, first)
        eq.run()
        assert log == ["first", "second"]

    def test_len(self):
        eq = EventQueue()
        eq.schedule(1.0, lambda: None)
        assert len(eq) == 1


class TestExitCodes:
    def rng(self):
        return np.random.default_rng(0)

    def test_completed_zero(self):
        assert exit_code_for(Outcome.COMPLETED, self.rng()) == 0

    def test_walltime(self):
        assert exit_code_for(Outcome.WALLTIME, self.rng()) == WALLTIME_EXIT

    def test_system_kill(self):
        assert exit_code_for(Outcome.SYSTEM_FAILURE, self.rng()) == SIGKILL_EXIT

    def test_launch_failure(self):
        assert exit_code_for(Outcome.LAUNCH_FAILURE, self.rng()) == \
            LAUNCH_FAILURE_EXIT

    def test_user_codes_plausible(self):
        rng = self.rng()
        codes = {exit_code_for(Outcome.USER_FAILURE, rng) for _ in range(200)}
        assert codes <= {1, 2, 134, 139, 255}
        assert len(codes) > 2

    def test_user_codes_nonzero(self):
        rng = self.rng()
        assert all(exit_code_for(Outcome.USER_FAILURE, rng) != 0
                   for _ in range(50))
