"""Tests for reliability trend statistics (Laplace, Crow/AMSAA)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.trend import crow_amsaa_beta, laplace_test, trend_report


class TestLaplace:
    def test_symmetric_times_zero(self):
        assert laplace_test(np.array([10.0, 50.0, 90.0]), 100.0) == \
            pytest.approx(0.0)

    def test_early_events_negative(self):
        times = np.linspace(1, 20, 50)  # all in the first fifth
        assert laplace_test(times, 100.0) < -3

    def test_late_events_positive(self):
        times = np.linspace(80, 99, 50)
        assert laplace_test(times, 100.0) > 3

    def test_poisson_usually_insignificant(self):
        rng = np.random.default_rng(1)
        hits = 0
        for _ in range(40):
            times = np.sort(rng.uniform(0, 1000, size=60))
            if abs(laplace_test(times, 1000.0)) < 1.96:
                hits += 1
        assert hits >= 32  # ~95% nominally

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            laplace_test(np.array([]), 10.0)

    def test_out_of_window_rejected(self):
        with pytest.raises(ValueError):
            laplace_test(np.array([11.0]), 10.0)

    @given(st.lists(st.floats(0.01, 99.9), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_score_finite(self, times):
        score = laplace_test(np.asarray(times), 100.0)
        assert np.isfinite(score)


class TestCrowAmsaa:
    def test_hpp_beta_near_one(self):
        rng = np.random.default_rng(2)
        betas = [crow_amsaa_beta(np.sort(rng.uniform(0, 1000, size=200)),
                                 1000.0) for _ in range(20)]
        assert np.median(betas) == pytest.approx(1.0, abs=0.2)

    def test_wearout_beta_above_one(self):
        # Power-law process with beta=2: t_i = T * sqrt(u_i).
        rng = np.random.default_rng(3)
        times = 1000.0 * np.sqrt(rng.uniform(0, 1, size=300))
        assert crow_amsaa_beta(times, 1000.0) > 1.5

    def test_growth_beta_below_one(self):
        rng = np.random.default_rng(4)
        times = 1000.0 * rng.uniform(0, 1, size=300) ** 2  # beta = 0.5
        assert crow_amsaa_beta(times, 1000.0) < 0.7

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            crow_amsaa_beta(np.array([0.0, 5.0]), 10.0)


class TestReport:
    def test_verdicts(self):
        early = trend_report(np.linspace(1, 10, 40), 100.0)
        late = trend_report(np.linspace(90, 99, 40), 100.0)
        flat = trend_report(np.array([25.0, 50.0, 75.0]), 100.0)
        assert early.verdict == "improving"
        assert late.verdict == "deteriorating"
        assert flat.verdict == "stationary"

    def test_on_simulated_failures(self, sim_result, scenario):
        """Our synthetic field has no drift: the trend should rarely be
        extreme (the injector is stationary by construction)."""
        from repro.workload.jobs import Outcome

        times = np.sort([r.end for r in sim_result.runs
                         if r.outcome is Outcome.SYSTEM_FAILURE
                         and r.end <= scenario.window.end])
        if times.size >= 5:
            report = trend_report(times, scenario.window.end)
            assert abs(report.laplace_score) < 4.0
            assert 0.2 < report.beta < 5.0
