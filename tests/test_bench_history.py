"""Perf-regression sentinel: history records, tolerance bands, CLI gate.

Acceptance from the observability-v2 PR: ``bench --check`` exits 0 on
the committed seeded baseline and exits non-zero *naming the stage*
when the latest record is doctored upward.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.history import (
    DEFAULT_ABS_FLOOR_S,
    HISTORY_SCHEMA,
    append_record,
    check_history,
    load_history,
    record_from_bench,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

_SCENARIO = {"days": 2.0, "thinning": 0.02, "seed": 1}


def _record(stages: dict[str, float], scenario: dict | None = None) -> dict:
    return {"schema": HISTORY_SCHEMA, "recorded_at": 1.0,
            "scenario": dict(_SCENARIO if scenario is None else scenario),
            "stages_s": dict(stages)}


def _history(*stage_maps: dict[str, float]) -> list[dict]:
    return [_record(stages) for stages in stage_maps]


class TestRecordFromBench:
    def test_keeps_the_comparison_slice(self):
        payload = {"schema": "bench-pipeline/4",
                   "scenario": {"days": 2.0, "seed": 1},
                   "runs": 100, "clusters": 7,
                   "stages_s": {"analyze": 1.5, "simulate": 0.5},
                   "logdiver_stages_s": {"assemble": 1.0},
                   "trace": {"span_events": 9}}
        record = record_from_bench(payload, recorded_at=5.0)
        assert record["schema"] == HISTORY_SCHEMA
        assert record["bench_schema"] == "bench-pipeline/4"
        assert record["recorded_at"] == 5.0
        assert record["runs"] == 100 and record["clusters"] == 7
        assert record["stages_s"] == {"analyze": 1.5,
                                      "logdiver/assemble": 1.0,
                                      "simulate": 0.5}
        assert "trace" not in record

    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = _record({"analyze": 1.0})
        second = _record({"analyze": 1.1})
        append_record(path, first)
        append_record(path, second)
        assert load_history(path) == [first, second]

    def test_torn_tail_truncates(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_record(path, _record({"analyze": 1.0}))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "bench-history/1", "stages')
        assert len(load_history(path)) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []


class TestCheckHistory:
    def test_empty_history_refused(self):
        with pytest.raises(ValueError):
            check_history([])

    def test_single_record_passes_with_no_baseline(self):
        report = check_history(_history({"analyze": 10.0}))
        assert report.passed
        assert report.baseline_records == 0
        (verdict,) = report.verdicts
        assert verdict.baseline_s is None

    def test_doctored_inflation_names_the_stage(self):
        report = check_history(_history(
            {"analyze": 10.0, "simulate": 5.0},
            {"analyze": 10.5, "simulate": 5.1},
            {"analyze": 9.8, "simulate": 4.9},
            {"analyze": 25.0, "simulate": 5.0}))
        assert not report.passed
        assert [v.stage for v in report.regressed] == ["analyze"]
        assert "REGRESSION: analyze" in report.render()

    def test_within_band_passes(self):
        report = check_history(_history({"analyze": 10.0},
                                        {"analyze": 10.2},
                                        {"analyze": 11.0}))
        assert report.passed

    def test_abs_floor_shields_millisecond_stages(self):
        # 8x relative blowup, but far under the absolute floor.
        latest = DEFAULT_ABS_FLOOR_S * 0.8
        report = check_history(_history({"classify": 0.02},
                                        {"classify": latest}))
        assert report.passed

    def test_median_baseline_absorbs_one_outlier(self):
        report = check_history(_history({"analyze": 10.0},
                                        {"analyze": 60.0},  # one noisy run
                                        {"analyze": 10.2},
                                        {"analyze": 11.0}))
        assert report.passed

    def test_other_scenarios_do_not_poison_the_baseline(self):
        quick = _record({"analyze": 0.1}, scenario={"days": 0.1})
        report = check_history(
            [quick, quick, _record({"analyze": 10.0})])
        assert report.passed
        assert report.baseline_records == 0

    def test_window_bounds_the_baseline(self):
        ancient = [_record({"analyze": 1.0})] * 10
        recent = [_record({"analyze": 10.0})] * 3
        report = check_history(ancient + recent + [_record(
            {"analyze": 11.0})], window=3)
        assert report.baseline_records == 3
        assert report.passed

    def test_stage_tolerance_override(self):
        records = _history({"rss_probe_memory": 10.0},
                           {"rss_probe_memory": 15.0})
        # 50% over baseline: outside the default 35% band, inside the
        # 60% override the RSS probes get.
        assert check_history(records).passed
        assert not check_history(
            records, stage_tolerance={"rss_probe_memory": 0.35}).passed

    def test_new_stage_has_no_baseline(self):
        report = check_history(_history(
            {"analyze": 10.0},
            {"analyze": 10.1, "brand_new": 3.0}))
        by_stage = {v.stage: v for v in report.verdicts}
        assert by_stage["brand_new"].baseline_s is None
        assert report.passed


class TestBenchCli:
    def _seed(self, path: Path, *stage_maps: dict[str, float]) -> None:
        for stages in stage_maps:
            append_record(path, _record(stages))

    def test_check_passes_on_healthy_history(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        self._seed(path, {"analyze": 10.0}, {"analyze": 10.4})
        assert main(["bench", "--check", "--history", str(path)]) == 0
        assert "all stages within tolerance" in capsys.readouterr().out

    def test_check_fails_naming_the_stage(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        self._seed(path, {"analyze": 10.0}, {"analyze": 30.0})
        assert main(["bench", "--check", "--history", str(path)]) == 1
        assert "REGRESSION: analyze" in capsys.readouterr().out

    def test_check_refuses_an_unseeded_history(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        assert main(["bench", "--check", "--history", str(path)]) == 2
        assert "no bench history" in capsys.readouterr().out

    def test_record_appends_then_check_gates(self, tmp_path):
        history = tmp_path / "history.jsonl"
        baseline = {"schema": "bench-pipeline/4", "scenario": _SCENARIO,
                    "runs": 10, "clusters": 2,
                    "stages_s": {"analyze": 10.0},
                    "logdiver_stages_s": {"assemble": 2.0}}
        payload_path = tmp_path / "BENCH_pipeline.json"
        payload_path.write_text(json.dumps(baseline))
        assert main(["bench", "--record", str(payload_path),
                     "--history", str(history)]) == 0
        doctored = dict(baseline, stages_s={"analyze": 40.0})
        payload_path.write_text(json.dumps(doctored))
        assert main(["bench", "--record", str(payload_path),
                     "--history", str(history), "--check"]) == 1

    def test_record_refuses_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["bench", "--record", str(bad),
                     "--history", str(tmp_path / "h.jsonl")]) == 2
        bad.write_text('{"no_stages": true}')
        assert main(["bench", "--record", str(bad),
                     "--history", str(tmp_path / "h.jsonl")]) == 2

    def test_summary_without_flags(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        self._seed(path, {"analyze": 10.0})
        assert main(["bench", "--history", str(path)]) == 0
        assert "1 record(s)" in capsys.readouterr().out

    def test_committed_seed_history_passes_the_gate(self, capsys):
        """The acceptance check CI runs: the repo ships a seeded history
        and the sentinel must exit 0 on it."""
        seeded = REPO_ROOT / "benchmarks" / "history.jsonl"
        assert load_history(seeded), "benchmarks/history.jsonl not seeded"
        assert main(["bench", "--check", "--history", str(seeded)]) == 0
