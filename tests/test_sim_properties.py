"""Property-based tests of simulator invariants with random workloads."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.faults.events import FaultEvent, FaultTimeline
from repro.faults.taxonomy import ErrorCategory
from repro.machine.blueprints import MachineBlueprint, build_machine
from repro.machine.nodetypes import NodeType
from repro.sim.cluster import ClusterSimulator, SimConfig
from repro.util.intervals import Interval
from repro.workload.jobs import AppRunPlan, JobPlan, Outcome

MACHINE = build_machine(MachineBlueprint(n_xe=64, n_xk=16, n_service=0))
WINDOW = Interval(0.0, 10 * 86400.0)


@st.composite
def job_plans(draw):
    n_jobs = draw(st.integers(1, 15))
    plans = []
    for i in range(n_jobs):
        node_type = draw(st.sampled_from([NodeType.XE, NodeType.XK]))
        cap = 64 if node_type is NodeType.XE else 16
        nodes = draw(st.integers(1, cap))
        n_runs = draw(st.integers(1, 3))
        runs = tuple(
            AppRunPlan(app_name="app",
                       natural_duration_s=draw(st.floats(60.0, 20000.0)),
                       user_fails=draw(st.booleans()),
                       user_failure_frac=draw(st.floats(0.01, 1.0)),
                       checkpoint_interval_s=draw(
                           st.sampled_from([0.0, 3600.0])))
            for _ in range(n_runs))
        total = sum(r.natural_duration_s for r in runs)
        walltime = total * draw(st.floats(0.3, 2.0))
        plans.append(JobPlan(job_id=i + 1, user="u",
                             submit_time=draw(st.floats(0.0, 400000.0)),
                             node_type=node_type, nodes=nodes,
                             walltime_s=max(walltime, 60.0), runs=runs))
    return plans


@st.composite
def fault_events(draw):
    n = draw(st.integers(0, 6))
    events = []
    for i in range(n):
        node_id = draw(st.integers(0, 79))
        fatal = draw(st.booleans())
        events.append(FaultEvent(
            event_id=i, time=draw(st.floats(0.0, 500000.0)),
            category=ErrorCategory.KERNEL_PANIC,
            component=str(MACHINE.node(node_id).name),
            node_ids=(node_id,), fatal=fatal, detected=True,
            repair_s=draw(st.floats(60.0, 7200.0)) if fatal else 0.0))
    return events


def simulate(plans, events, policy="fcfs"):
    sim = ClusterSimulator(MACHINE, config=SimConfig(
        launch_failure_prob=0.0, scheduler_policy=policy), seed=1)
    return sim.run(plans, FaultTimeline(events=events), WINDOW)


class TestInvariants:
    @given(job_plans(), fault_events())
    @settings(max_examples=40, deadline=None)
    def test_every_job_accounted(self, plans, events):
        result = simulate(plans, events)
        finished = {j.job_id for j in result.jobs}
        unstarted = {p.job_id for p in result.unstarted_jobs}
        assert finished | unstarted == {p.job_id for p in plans}
        assert not finished & unstarted

    @given(job_plans(), fault_events())
    @settings(max_examples=40, deadline=None)
    def test_no_node_double_booking(self, plans, events):
        result = simulate(plans, events)
        for a in result.jobs:
            for b in result.jobs:
                if a.job_id >= b.job_id:
                    continue
                overlap = (a.start_time < b.end_time
                           and b.start_time < a.end_time)
                if overlap:
                    assert not set(a.node_ids) & set(b.node_ids)

    @given(job_plans(), fault_events())
    @settings(max_examples=40, deadline=None)
    def test_run_time_bounds(self, plans, events):
        result = simulate(plans, events)
        by_id = {p.job_id: p for p in plans}
        for run in result.runs:
            plan = by_id[run.job_id]
            assert run.start >= plan.submit_time
            assert run.end >= run.start
            # A run never outlives its job's walltime by more than jitter.
            job = [j for j in result.jobs if j.job_id == run.job_id][0]
            assert run.end <= job.end_time + 1e-6

    @given(job_plans())
    @settings(max_examples=40, deadline=None)
    def test_no_faults_no_system_failures(self, plans):
        result = simulate(plans, [])
        for run in result.runs:
            assert run.outcome in (Outcome.COMPLETED, Outcome.USER_FAILURE,
                                   Outcome.WALLTIME)

    @given(job_plans(), fault_events())
    @settings(max_examples=30, deadline=None)
    def test_backfill_same_accounting(self, plans, events):
        """Backfill may reorder, but jobs and runs stay accounted."""
        fcfs = simulate(plans, events, policy="fcfs")
        backfill = simulate(plans, events, policy="backfill")
        assert (len(backfill.jobs) + len(backfill.unstarted_jobs)
                == len(fcfs.jobs) + len(fcfs.unstarted_jobs))

    @given(job_plans(), fault_events())
    @settings(max_examples=30, deadline=None)
    def test_checkpoint_never_exceeds_elapsed(self, plans, events):
        result = simulate(plans, events)
        for run in result.runs:
            assert run.checkpointed_s <= run.elapsed_s + 1e-6

    @given(job_plans(), fault_events())
    @settings(max_examples=30, deadline=None)
    def test_node_hours_non_negative_and_finite(self, plans, events):
        result = simulate(plans, events)
        for run in result.runs:
            assert np.isfinite(run.node_hours)
            assert run.node_hours >= 0.0
            assert run.lost_node_hours >= -1e-9
