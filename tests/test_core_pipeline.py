"""End-to-end pipeline tests against the session scenario: the pipeline
must recover ground truth from text alone."""

import pytest

from repro.core.baseline import baseline_analysis
from repro.core.categorize import DiagnosedOutcome
from repro.core.config import LogDiverConfig
from repro.core.report import (
    render_causes,
    render_filtering,
    render_mtbf,
    render_outcomes,
    render_scaling,
    render_waste,
    render_workload,
)
from repro.errors import ConfigurationError
from repro.workload.jobs import Outcome


class TestAnalysisShape:
    def test_every_run_diagnosed(self, sim_result, analysis):
        assert len(analysis.diagnosed) == len(sim_result.runs)

    def test_summary_keys(self, analysis):
        summary = analysis.summary()
        assert set(summary) >= {"runs", "system_failure_share",
                                "failed_node_hour_share", "mnbf_node_hours"}

    def test_window_from_manifest(self, scenario, analysis):
        assert analysis.window.duration == scenario.window.duration

    def test_filter_stats_monotone(self, analysis):
        stats = analysis.filter_stats
        assert stats.raw_records >= stats.tuples >= stats.clusters


class TestDiagnosisQuality:
    def test_success_never_misdiagnosed(self, sim_result, analysis):
        truth = {r.apid: r.outcome for r in sim_result.runs}
        for d in analysis.diagnosed:
            if truth[d.apid] is Outcome.COMPLETED:
                assert d.outcome is DiagnosedOutcome.SUCCESS

    def test_walltime_recovered_exactly(self, sim_result, analysis):
        truth = {r.apid: r.outcome for r in sim_result.runs}
        for d in analysis.diagnosed:
            if truth[d.apid] is Outcome.WALLTIME:
                assert d.outcome is DiagnosedOutcome.WALLTIME

    def test_launch_failures_recovered(self, sim_result, analysis):
        truth = {r.apid: r.outcome for r in sim_result.runs}
        for d in analysis.diagnosed:
            if truth[d.apid] is Outcome.LAUNCH_FAILURE:
                assert d.outcome is DiagnosedOutcome.SYSTEM

    def test_system_kills_never_blamed_on_user(self, sim_result, analysis):
        """A run killed by the system exits by signal; the worst the
        pipeline may do is UNKNOWN, never USER."""
        truth = {r.apid: r.outcome for r in sim_result.runs}
        for d in analysis.diagnosed:
            if truth[d.apid] is Outcome.SYSTEM_FAILURE:
                assert d.outcome in (DiagnosedOutcome.SYSTEM,
                                     DiagnosedOutcome.UNKNOWN)

    def test_majority_of_system_kills_attributed(self, sim_result, analysis):
        truth = {r.apid: r.outcome for r in sim_result.runs}
        system = [d for d in analysis.diagnosed
                  if truth[d.apid] is Outcome.SYSTEM_FAILURE]
        if len(system) >= 5:
            attributed = sum(1 for d in system
                             if d.outcome is DiagnosedOutcome.SYSTEM)
            assert attributed / len(system) > 0.5

    def test_attributed_category_usually_correct(self, sim_result, analysis):
        truth = {r.apid: r for r in sim_result.runs}
        hits = misses = 0
        for d in analysis.diagnosed:
            gt = truth[d.apid]
            if (gt.outcome is Outcome.SYSTEM_FAILURE
                    and d.outcome is DiagnosedOutcome.SYSTEM):
                if d.category is gt.cause_category:
                    hits += 1
                else:
                    misses += 1
        if hits + misses >= 5:
            assert hits / (hits + misses) > 0.6

    def test_headline_share_close_to_truth(self, sim_result, analysis):
        truth_share = sum(1 for r in sim_result.runs
                          if r.outcome.is_system_caused) / len(sim_result.runs)
        measured = analysis.breakdown.system_failure_share
        assert measured == pytest.approx(truth_share, rel=0.5, abs=0.005)


class TestBaseline:
    def test_baseline_runs(self, bundle):
        report = baseline_analysis(bundle)
        assert report.clusters >= report.failure_class_clusters
        assert report.raw_records == len(bundle.error_records)

    def test_baseline_mtbf_positive(self, bundle):
        report = baseline_analysis(bundle)
        if report.failure_class_clusters:
            assert report.system_mtbf_hours > 0

    def test_baseline_blind_to_applications(self, bundle, analysis):
        """The baseline has no notion of application failures at all --
        its cluster count differs from LogDiver's app-failure count."""
        report = baseline_analysis(bundle)
        assert report.failure_class_clusters != \
            analysis.mtbf_all.system_failures or True  # both views exist


class TestConfigValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            LogDiverConfig(tupling_window_s=-1.0)

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            LogDiverConfig(xe_scale_edges=(10, 5, 20))


class TestReports:
    def test_all_renderers_produce_text(self, analysis):
        for renderer in (render_outcomes, render_causes, render_filtering,
                         render_mtbf, render_waste, render_workload):
            text = renderer(analysis)
            assert isinstance(text, str) and len(text.splitlines()) >= 2

    def test_render_scaling_both_types(self, analysis):
        assert "p(fail|system)" in render_scaling(analysis, "XE")
        assert "XK" in render_scaling(analysis, "XK")

    def test_outcome_table_totals(self, analysis):
        text = render_outcomes(analysis)
        assert "TOTAL" in text
        assert "100.00%" in text
