"""Supervised fault-tolerant execution: retries, timeouts, resume, chaos.

The contracts under test are the PR's acceptance criteria:

* a seeded chaos schedule (crashes, hangs, stalls, raised errors) plus
  retries >= failures-per-unit produces results identical to the
  fault-free serial loop -- supervision never changes answers;
* exhausted units are quarantined (``CampaignAborted`` unless the
  policy allows partial results) after every other unit completes;
* the write-ahead journal survives torn tails and drives ``resume``
  without re-running finished units;
* teardown reaps every spawn worker -- Ctrl-C leaves no orphans;
* serial and ``--jobs 2`` supervised runs emit the same trace skeleton
  and counter totals.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.engine import (
    configure_engine,
    current_policy,
    run_campaign,
)
from repro.campaign.supervisor import (
    ATTEMPT_STATUSES,
    JOURNAL_SCHEMA,
    CampaignAborted,
    ExecutionAccounting,
    Journal,
    SupervisorPolicy,
    build_policy,
    campaign_key,
    run_supervised,
)
from repro.core.sharding import analyze_streamed
from repro.errors import ConfigurationError
from repro.faults.chaos import (
    ChaosError,
    inject,
    parse_chaos,
    schedule_from_env,
)
from repro.obs import Tracer, normalized_events, scoped_registry, tracing
from repro.util.rngs import RngFactory


def _sup_unit(value: int, seed: int) -> tuple[int, int]:
    """Module-level so spawn attempt processes can pickle it."""
    rng = RngFactory(seed + value).get("test/supervised-unit")
    return value, int(rng.integers(0, 1_000_000))


def _exit_zero_unit(value: int) -> int:
    """A worker that dies silently *successfully*: exit 0, no payload."""
    os._exit(0)


def _units(n: int, seed: int = 7) -> list[dict]:
    return [dict(value=i, seed=seed) for i in range(n)]


def _clean(units: list[dict]) -> list:
    return [_sup_unit(**u) for u in units]


def _policy(journal_dir, **overrides) -> SupervisorPolicy:
    """A test policy: fast heartbeats/backoff, journal in a tmp dir."""
    overrides.setdefault("journal_dir", str(journal_dir))
    overrides.setdefault("heartbeat_s", 0.2)
    overrides.setdefault("backoff_base_s", 0.01)
    overrides.setdefault("backoff_cap_s", 0.05)
    return SupervisorPolicy(**overrides)


class TestChaosSpec:
    def test_full_grammar(self):
        schedule = parse_chaos("crash@1,hang@3x2:60,bloat@*:128")
        crash, hang, bloat = schedule.actions
        assert (crash.mode, crash.unit, crash.times, crash.param) == \
            ("crash", 1, 1, None)
        assert (hang.mode, hang.unit, hang.times, hang.param) == \
            ("hang", 3, 2, 60.0)
        assert (bloat.mode, bloat.unit, bloat.times, bloat.param) == \
            ("bloat", None, 1, 128.0)

    @pytest.mark.parametrize("bad", [
        "", "   ", "crash", "nuke@1", "crash@", "crash@1.5",
        "crash@-1", "crash@1x0", "hang@1:-5", "crash@1xtwo",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_chaos(bad)

    def test_first_match_wins_and_times_window(self):
        schedule = parse_chaos("crash@1x2,raise@*")
        assert schedule.action_for(1, 0).mode == "crash"
        assert schedule.action_for(1, 1).mode == "crash"
        # Unit 1's crash budget exhausted: falls through to the
        # wildcard, whose own window (attempt 0 only) has passed too.
        assert schedule.action_for(1, 2) is None
        assert schedule.action_for(0, 0).mode == "raise"
        assert schedule.action_for(0, 1) is None

    def test_schedule_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert schedule_from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "raise@0")
        assert schedule_from_env().actions[0].mode == "raise"
        monkeypatch.setenv("REPRO_CHAOS", "garbage")
        with pytest.raises(ConfigurationError):
            schedule_from_env()

    def test_inject_noop_and_raise(self):
        assert inject(None, unit=0, attempt=0) is None
        assert inject("raise@3", unit=0, attempt=0) is None
        with pytest.raises(ChaosError):
            inject("raise@3", unit=3, attempt=0)


class TestPolicy:
    @pytest.mark.parametrize("kwargs", [
        dict(timeout_s=0.0), dict(heartbeat_s=0.0),
        dict(stale_after_s=-1.0), dict(retries=-1),
        dict(backoff_base_s=-0.1), dict(chaos="nuke@1"),
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(**kwargs)

    def test_effective_stale_after(self):
        assert SupervisorPolicy().effective_stale_after_s == 10.0
        assert SupervisorPolicy(
            heartbeat_s=2.0).effective_stale_after_s == 20.0
        assert SupervisorPolicy(
            stale_after_s=3.0).effective_stale_after_s == 3.0

    def test_build_policy_is_opt_in(self):
        # No supervision flag -> no policy -> the plain pool path.
        assert build_policy() is None
        policy = build_policy(retries=5)
        assert policy is not None and policy.retries == 5
        # Any single flag activates supervision with default retries.
        policy = build_policy(chaos="raise@0")
        assert policy.retries == 2 and policy.chaos == "raise@0"
        assert build_policy(resume=True).resume
        assert build_policy(allow_partial=True).allow_partial


class TestCampaignKey:
    def test_stable_and_sensitive(self):
        units = _units(3)
        assert campaign_key("k", units) == campaign_key("k", _units(3))
        assert campaign_key("k", units) != campaign_key("other", units)
        assert campaign_key("k", units) != campaign_key("k", _units(2))

    def test_pickle_fallback_for_rich_units(self):
        # bytes defeat canonical JSON -> the pickle-digest fallback,
        # which must still be stable for identically built unit lists.
        rich = [dict(blob=b"abc", value=1)]
        assert campaign_key("k", rich) == \
            campaign_key("k", [dict(blob=b"abc", value=1)])
        assert campaign_key("k", rich) != \
            campaign_key("k", [dict(blob=b"abd", value=1)])


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path).open()
        records = [{"event": "begin", "schema": JOURNAL_SCHEMA},
                   {"event": "done", "unit": 0}]
        for record in records:
            journal.append(record)
        journal.close()
        assert Journal.read(path) == records

    def test_torn_tail_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path).open()
        journal.append({"event": "begin"})
        journal.append({"event": "done", "unit": 1})
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"event": "do')  # parent died mid-append
        assert Journal.read(path) == [
            {"event": "begin"}, {"event": "done", "unit": 1}]

    def test_non_dict_line_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b'{"event": "begin"}\n42\n{"event": "end"}\n')
        assert Journal.read(path) == [{"event": "begin"}]

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal.read(tmp_path / "absent.jsonl") == []

    def test_unjournaled_policy_writes_nothing(self, tmp_path):
        policy = _policy(tmp_path, journal=False, retries=0)
        report = run_supervised(_sup_unit, _units(1), policy=policy)
        assert report.results == _clean(_units(1))
        assert not list(tmp_path.glob("*.jsonl"))


class TestSupervisedExecution:
    def test_chaos_retries_match_clean_serial(self, tmp_path):
        """Acceptance: crash + raise, retried, byte-identical results."""
        units = _units(3)
        policy = _policy(tmp_path, retries=1, chaos="raise@0x1,crash@1x1")
        report = run_supervised(_sup_unit, units, policy=policy, jobs=2)
        assert report.results == _clean(units)

        statuses = {o.index: [a.status for a in o.attempts]
                    for o in report.outcomes}
        assert statuses == {0: ["raised", "ok"],
                            1: ["crashed", "ok"],
                            2: ["ok"]}
        crashed = report.outcomes[1].attempts[0]
        assert crashed.exit_code == -signal.SIGKILL
        raised = report.outcomes[0].attempts[0]
        assert "ChaosError" in raised.error

        accounting = report.accounting
        assert accounting == ExecutionAccounting(
            units=3, done=3, resumed=0, retried=2, quarantined=0,
            attempts=5)
        assert accounting.complete

        records = Journal.read(report.journal_path)
        assert records[0]["schema"] == JOURNAL_SCHEMA
        events = [r["event"] for r in records]
        assert events[0] == "begin" and events[-1] == "end"
        assert events.count("dispatch") == 5
        assert events.count("done") == 3
        assert "quarantine" not in events
        for record in records:
            if record["event"] == "attempt":
                assert record["status"] in ATTEMPT_STATUSES
        # A complete campaign reclaims its scratch dir, keeps the journal.
        assert report.journal_path.exists()
        assert not (tmp_path / report.key).exists()

    def test_hung_and_stalled_workers_are_killed_and_retried(
            self, tmp_path):
        # Unit 0 sleeps past the wall clock with a live heartbeat
        # (hung); unit 1 silences its heartbeat (stalled) -- liveness,
        # not the timeout, must catch it.  stale_after must clear the
        # spawn/import boot (several seconds here) yet undercut the
        # timeout, so the stalled unit is caught by liveness first.
        units = _units(2)
        policy = _policy(tmp_path, retries=1, timeout_s=10.0,
                         stale_after_s=6.0,
                         chaos="hang@0x1:60,stall@1x1:60")
        report = run_supervised(_sup_unit, units, policy=policy, jobs=2)
        assert report.results == _clean(units)
        statuses = {o.index: [a.status for a in o.attempts]
                    for o in report.outcomes}
        assert statuses == {0: ["hung", "ok"], 1: ["stalled", "ok"]}
        for outcome in report.outcomes:
            assert outcome.attempts[0].exit_code == -signal.SIGKILL

    def test_silent_exit_zero_is_vanished(self, tmp_path):
        policy = _policy(tmp_path, retries=0, allow_partial=True)
        report = run_supervised(_exit_zero_unit, [dict(value=0)],
                                policy=policy)
        (outcome,) = report.outcomes
        assert outcome.status == "quarantined"
        assert [a.status for a in outcome.attempts] == ["vanished"]
        assert outcome.attempts[0].exit_code == 0
        assert report.results == [None]

    def test_quarantine_aborts_after_finishing_other_units(self, tmp_path):
        units = _units(2)
        policy = _policy(tmp_path, retries=1, chaos="crash@1x5")
        with pytest.raises(CampaignAborted) as excinfo:
            run_supervised(_sup_unit, units, policy=policy, jobs=2)
        report = excinfo.value.report
        assert "1 unit(s) quarantined" in str(excinfo.value)
        assert report.quarantined_indices == [1]
        # The healthy unit was still driven to completion.
        assert report.results == [_clean(units)[0], None]
        assert [a.status for a in report.outcomes[1].attempts] == \
            ["crashed", "crashed"]
        assert not report.accounting.complete
        (quarantine,) = [r for r in Journal.read(report.journal_path)
                         if r["event"] == "quarantine"]
        assert quarantine["unit"] == 1
        assert [a["status"] for a in quarantine["attempts"]] == \
            ["crashed", "crashed"]

    def test_allow_partial_returns_holes(self, tmp_path):
        units = _units(2)
        policy = _policy(tmp_path, retries=0, chaos="crash@1x5",
                         allow_partial=True)
        report = run_supervised(_sup_unit, units, policy=policy, jobs=2)
        assert report.results == [_clean(units)[0], None]
        assert report.accounting.quarantined == 1
        assert not report.accounting.complete

    def test_resume_skips_finished_units(self, tmp_path):
        units = _units(3)
        first = _policy(tmp_path, retries=0, chaos="crash@2x5")
        with pytest.raises(CampaignAborted) as excinfo:
            run_supervised(_sup_unit, units, policy=first, jobs=2)
        journal_path = excinfo.value.report.journal_path

        # A torn tail from a dying parent must not defeat resume.
        with open(journal_path, "ab") as handle:
            handle.write(b'\x00{"event": "gar')

        second = _policy(tmp_path, retries=0, resume=True)
        tracer = Tracer()
        with tracing(tracer), scoped_registry() as registry:
            report = run_supervised(_sup_unit, units, policy=second,
                                    jobs=2)
        assert report.results == _clean(units)
        assert report.accounting.resumed == 2
        assert report.accounting.done == 1
        assert report.accounting.attempts == 1  # only unit 2 re-ran
        counters = registry.snapshot()["counters"]
        assert counters["campaign_supervisor_resumed_total"] == 2
        names = [e["name"] for e in tracer.events()]
        assert names.count("unit_resumed") == 2

    def test_resume_without_journal_runs_everything(self, tmp_path):
        units = _units(2)
        policy = _policy(tmp_path, retries=0, resume=True)
        report = run_supervised(_sup_unit, units, policy=policy)
        assert report.results == _clean(units)
        assert report.accounting.resumed == 0
        assert report.accounting.done == 2


class TestDeterminismProperty:
    @settings(max_examples=3, deadline=None)
    @given(mode=st.sampled_from(["crash", "raise"]),
           target=st.integers(min_value=0, max_value=2),
           times=st.integers(min_value=1, max_value=2))
    def test_chaos_with_enough_retries_matches_clean_serial(
            self, mode, target, times):
        """Seeded chaos + retries >= failures-per-unit never changes
        answers -- only the attempt accounting."""
        units = _units(3, seed=13)
        journal_dir = tempfile.mkdtemp(prefix="repro-sup-hyp-")
        try:
            policy = _policy(journal_dir, retries=times,
                             chaos=f"{mode}@{target}x{times}")
            report = run_supervised(_sup_unit, units, policy=policy,
                                    jobs=2)
            assert report.results == _clean(units)
            assert report.accounting.complete
            assert report.accounting.retried == times
            assert report.accounting.attempts == len(units) + times
        finally:
            shutil.rmtree(journal_dir, ignore_errors=True)


_SIGINT_DRIVER = textwrap.dedent("""\
    import multiprocessing
    import sys
    import time

    def slow_unit(value):
        time.sleep(60)
        return value

    def main():
        from repro.campaign.supervisor import (
            SupervisorPolicy, run_supervised)
        policy = SupervisorPolicy(retries=0, heartbeat_s=0.2,
                                  journal_dir={journal_dir!r})
        try:
            run_supervised(slow_unit,
                           [dict(value=i) for i in range(2)],
                           policy=policy, jobs=2)
        except KeyboardInterrupt:
            leftovers = multiprocessing.active_children()
            print("REAPED" if not leftovers
                  else f"ORPHANS: {{leftovers}}", flush=True)
            sys.exit(42)
        sys.exit(1)

    if __name__ == "__main__":
        main()
""")


def _group_members(pgid: int) -> list[int]:
    """Live pids in process group ``pgid`` (via /proc)."""
    members = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            stat = (Path("/proc") / entry / "stat").read_text()
        except OSError:
            continue
        # Field 5 (after the parenthesised comm, which may hold
        # spaces) is the process group id.
        fields = stat.rsplit(")", 1)[-1].split()
        if len(fields) > 2 and int(fields[2]) == pgid:
            members.append(int(entry))
    return members


class TestSigintReapsWorkers:
    def test_interrupt_leaves_no_orphan_workers(self, tmp_path):
        script = tmp_path / "driver.py"
        script.write_text(_SIGINT_DRIVER.format(
            journal_dir=str(tmp_path / "journal")))
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, start_new_session=True, env=env)
        try:
            # Wait for both workers to be demonstrably up: the
            # heartbeat files only exist once the spawn interpreters
            # finished importing and entered the unit.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(list((tmp_path / "journal").glob("*/*.hb"))) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("workers never came up")
            os.kill(proc.pid, signal.SIGINT)
            output, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 42, output
        assert "REAPED" in output
        # No process in the driver's (own) process group survives it:
        # spawn workers inherit the group, so an orphan would show here.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not _group_members(proc.pid):
                break
            time.sleep(0.1)
        assert _group_members(proc.pid) == []


def _traced_supervised(jobs: int, journal_dir: Path):
    units = _units(3, seed=5)
    policy = _policy(journal_dir, retries=1, chaos="raise@0x1")
    tracer = Tracer()
    with tracing(tracer), scoped_registry() as registry:
        report = run_supervised(_sup_unit, units, policy=policy,
                                jobs=jobs)
    return report, tracer, registry


class TestSupervisedTraceParity:
    """Serial and --jobs 2 supervised runs are observably identical."""

    @pytest.fixture(scope="class")
    def serial_and_parallel(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("sup-parity")
        return (_traced_supervised(1, root / "serial"),
                _traced_supervised(2, root / "parallel"))

    def test_results_identical(self, serial_and_parallel):
        (serial, _, _), (parallel, _, _) = serial_and_parallel
        assert serial.results == parallel.results

    def test_span_skeletons_identical(self, serial_and_parallel):
        (_, serial_tracer, _), (_, parallel_tracer, _) = \
            serial_and_parallel
        assert normalized_events(serial_tracer.events()) == \
            normalized_events(parallel_tracer.events())

    def test_counter_totals_identical(self, serial_and_parallel):
        # Counters only: campaign_workers is a gauge and *should*
        # differ between 1 and 2 workers.
        (_, _, serial_reg), (_, _, parallel_reg) = serial_and_parallel
        assert serial_reg.snapshot()["counters"] == \
            parallel_reg.snapshot()["counters"]

    def test_failed_attempts_get_deterministic_spans(
            self, serial_and_parallel):
        _, (_, tracer, _) = serial_and_parallel
        (campaign,) = tracer.roots
        assert campaign.name == "campaign"
        first = campaign.children[0]
        assert first.name == "unit_attempt"
        assert first.attrs["index"] == 0
        assert first.attrs["status"] == "raised"
        # The failed worker's own span tree is grafted underneath.
        assert [c.name for c in first.children] == ["unit"]


class TestEngineIntegration:
    def test_run_campaign_with_explicit_policy(self, tmp_path):
        units = _units(2)
        policy = _policy(tmp_path, retries=1, chaos="raise@0x1")
        results = run_campaign(_sup_unit, units, jobs=2, policy=policy)
        assert results == _clean(units)
        assert list(tmp_path.glob("*.jsonl"))

    def test_configure_engine_installs_default_policy(self, tmp_path):
        policy = _policy(tmp_path, retries=0)
        configure_engine(policy=policy)
        try:
            assert current_policy() is policy
            units = _units(2)
            assert run_campaign(_sup_unit, units) == _clean(units)
            assert list(tmp_path.glob("*.jsonl"))
        finally:
            configure_engine(policy=None)
        assert current_policy() is None

    def test_explicit_none_policy_overrides_global(self, tmp_path):
        configure_engine(policy=_policy(tmp_path, retries=0))
        try:
            units = _units(2)
            assert run_campaign(_sup_unit, units, policy=None) == \
                _clean(units)
            # The plain pool ran: no journal was ever written.
            assert not list(tmp_path.glob("*.jsonl"))
        finally:
            configure_engine(policy=None)


class TestStreamedSupervision:
    def test_chaos_stream_matches_unsupervised(self, bundle_dir,
                                               tmp_path):
        plain = analyze_streamed(bundle_dir, shards=2)
        assert plain.execution is None and plain.complete
        policy = _policy(tmp_path, retries=2, chaos="crash@0x1")
        supervised = analyze_streamed(bundle_dir, shards=2, jobs=2,
                                      policy=policy)
        assert supervised.execution is not None
        assert supervised.complete
        assert supervised.execution.retried >= 1
        assert json.dumps(supervised.summary(), sort_keys=True) == \
            json.dumps(plain.summary(), sort_keys=True)

    def test_partial_stream_reports_incompleteness(self, bundle_dir,
                                                   tmp_path):
        policy = _policy(tmp_path, retries=0, chaos="crash@0x3",
                         allow_partial=True)
        supervised = analyze_streamed(bundle_dir, shards=2, jobs=2,
                                      policy=policy)
        assert supervised.execution is not None
        assert supervised.execution.quarantined >= 1
        assert not supervised.complete
