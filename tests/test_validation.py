"""Validation subsystem: oracle bands, golden store, degradation sweep.

Everything here runs on the small session-scoped ``analysis`` /
``bundle_dir`` fixtures -- the point is the *mechanics* (band logic,
drift detection, canonical JSON stability, sweep plumbing), not the
paper-calibrated numbers, which ``python -m repro validate`` checks on
the real validation preset.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.validation.degradation import degradation_curve
from repro.validation.goldens import (
    GOLDEN_IDS,
    canonical_json,
    check_goldens,
    compute_snapshot,
    update_goldens,
)
from repro.validation.oracle import (
    DEFAULT_BANDS,
    OracleBand,
    check_summary,
)

#: A summary comfortably inside every default band.
_GOOD_SUMMARY = {
    "runs": 5000.0,
    "system_failure_share": 0.0153,
    "failed_node_hour_share": 0.09,
    "mnbf_node_hours": 50_000.0,
    "xe_curve_growth": 20.0,
    "xk_curve_growth": 6.0,
}


class TestOracle:
    def test_good_summary_passes(self):
        report = check_summary(_GOOD_SUMMARY)
        assert report.passed
        assert report.failures == []
        assert all(c.status == "ok" for c in report.checks)

    def test_required_band_violation_fails(self):
        summary = dict(_GOOD_SUMMARY, system_failure_share=0.5)
        report = check_summary(summary)
        assert not report.passed
        assert [c.band.key for c in report.failures] == [
            "system_failure_share"]
        assert "FAIL" in report.render()

    def test_advisory_violation_does_not_fail(self):
        summary = dict(_GOOD_SUMMARY, xe_curve_growth=1e6)
        report = check_summary(summary)
        assert report.passed
        assert "off-band (advisory)" in report.render()

    def test_missing_metric_fails_its_band(self):
        summary = {k: v for k, v in _GOOD_SUMMARY.items() if k != "runs"}
        report = check_summary(summary)
        assert not report.passed

    def test_nan_is_out_of_band(self):
        band = OracleBand("x", 0.0, 1.0, True, "test")
        assert not band.check(math.nan).ok
        assert not band.check(None).ok
        assert band.check(0.5).ok

    def test_band_edges_are_inclusive(self):
        band = OracleBand("x", 1.0, 2.0, True, "test")
        assert band.check(1.0).ok and band.check(2.0).ok
        assert not band.check(0.999).ok

    def test_default_bands_cover_the_headline_shares(self):
        required = {b.key for b in DEFAULT_BANDS if b.required}
        assert {"system_failure_share",
                "failed_node_hour_share"} <= required
        advisory = {b.key for b in DEFAULT_BANDS if not b.required}
        assert {"xe_curve_growth", "xk_curve_growth"} <= advisory


class TestCanonicalJson:
    def test_sorts_keys_and_rounds_floats(self):
        text = canonical_json({"b": 1 / 3, "a": 1})
        data = json.loads(text)
        assert list(data) == ["a", "b"]
        assert data["b"] == float(f"{1 / 3:.10g}")

    def test_tolerates_last_ulp_noise(self):
        a = canonical_json({"x": 0.1 + 0.2})
        b = canonical_json({"x": 0.3})
        assert a == b

    def test_tuples_become_lists(self):
        assert json.loads(canonical_json({"t": (1, 2)})) == {"t": [1, 2]}

    def test_non_jsonable_rejected(self):
        with pytest.raises(TypeError, match="not JSON-able"):
            canonical_json({"x": object()})


class TestGoldenStore:
    def test_unknown_preset_rejected(self, analysis):
        with pytest.raises(KeyError, match="unknown golden preset"):
            compute_snapshot("T9", analysis)

    def test_update_then_check_round_trips(self, analysis, tmp_path):
        written = update_goldens(directory=tmp_path, analysis=analysis)
        assert len(written) == len(GOLDEN_IDS)
        report = check_goldens(directory=tmp_path, analysis=analysis)
        assert report.passed
        assert all(e.status == "ok" for e in report.entries)

    def test_drift_is_detected_and_located(self, analysis, tmp_path):
        update_goldens(directory=tmp_path, analysis=analysis)
        path = tmp_path / "T2.json"
        stored = json.loads(path.read_text())
        stored["runs"] += 1
        path.write_text(canonical_json(stored) + "\n")
        report = check_goldens(directory=tmp_path, analysis=analysis)
        assert not report.passed
        (drifted,) = [e for e in report.entries if e.status == "drift"]
        assert drifted.preset_id == "T2"
        assert "line" in drifted.detail
        assert "--update-goldens" in report.render()

    def test_missing_snapshot_is_reported(self, analysis, tmp_path):
        update_goldens(directory=tmp_path, analysis=analysis)
        (tmp_path / "T5.json").unlink()
        report = check_goldens(directory=tmp_path, analysis=analysis)
        assert not report.passed
        (missing,) = [e for e in report.entries if e.status == "missing"]
        assert missing.preset_id == "T5"

    def test_snapshots_are_deterministic(self, analysis):
        for preset_id in GOLDEN_IDS:
            once = canonical_json(compute_snapshot(preset_id, analysis))
            again = canonical_json(compute_snapshot(preset_id, analysis))
            assert once == again


class TestDegradation:
    @pytest.fixture(scope="class")
    def curve(self, bundle_dir):
        return degradation_curve(bundle_dir, rates=(0.02,), seed=3, jobs=1)

    def test_clean_anchor_is_always_present(self, curve):
        assert curve.points[0].rate == 0.0
        assert curve.points[0].mutations == 0
        assert curve.drift_at(0.0, "system_failure_share") == 0.0

    def test_corruption_point_quarantines(self, curve):
        damaged = curve.points[-1]
        assert damaged.rate == 0.02
        assert damaged.mutations > 0
        assert damaged.quarantined > 0
        assert damaged.parsed > 0

    def test_drift_accessors_agree(self, curve):
        drift = curve.drift_at(0.02, "system_failure_share")
        assert abs(drift) <= curve.max_abs_drift("system_failure_share")
        assert "corruption" in curve.render()

    def test_serial_and_parallel_sweeps_are_byte_identical(self, bundle_dir):
        kwargs = dict(rates=(0.01, 0.02), seed=9)
        serial = degradation_curve(bundle_dir, jobs=1, **kwargs)
        parallel = degradation_curve(bundle_dir, jobs=2, **kwargs)
        assert (canonical_json([p.summary for p in serial.points])
                == canonical_json([p.summary for p in parallel.points]))
        assert ([p.quarantined for p in serial.points]
                == [p.quarantined for p in parallel.points])
        assert ([p.mutations for p in serial.points]
                == [p.mutations for p in parallel.points])
