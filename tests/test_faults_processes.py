"""Statistical tests for fault arrival processes.

Rates are checked against generous tolerances (processes are random,
tests must not flake); structural properties (sortedness, window
containment) are exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.faults.processes import (
    ClusterProcess,
    DiurnalPoissonProcess,
    PoissonProcess,
    RenewalProcess,
)
from repro.util.intervals import Interval

WINDOW = Interval(0.0, 1_000_000.0)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestPoisson:
    def test_mean_rate_matches(self):
        process = PoissonProcess(rate=1e-3)
        times = process.sample(rng(), WINDOW)
        expected = process.mean_rate() * WINDOW.duration
        assert abs(len(times) - expected) < 5 * np.sqrt(expected)

    def test_times_sorted_and_inside(self):
        times = PoissonProcess(1e-4).sample(rng(), WINDOW)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= WINDOW.start) & (times < WINDOW.end))

    def test_zero_rate_empty(self):
        assert len(PoissonProcess(0.0).sample(rng(), WINDOW)) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(-1.0)

    def test_empty_window(self):
        assert len(PoissonProcess(1.0).sample(rng(), Interval(5, 5))) == 0


class TestRenewal:
    @pytest.mark.parametrize("family,shape", [
        ("weibull", 0.7), ("weibull", 1.5), ("lognormal", 1.0)])
    def test_long_run_rate(self, family, shape):
        process = RenewalProcess(mean_interarrival=500.0, shape=shape,
                                 family=family)
        times = process.sample(rng(1), WINDOW)
        expected = WINDOW.duration / 500.0
        assert abs(len(times) - expected) < 0.25 * expected + 50

    def test_sorted_inside_window(self):
        times = RenewalProcess(1000.0).sample(rng(2), WINDOW)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= WINDOW.start) & (times < WINDOW.end))

    def test_bad_family_rejected(self):
        with pytest.raises(ConfigurationError):
            RenewalProcess(1.0, family="gamma")

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            RenewalProcess(0.0)

    def test_weibull_clustering_shape(self):
        """shape < 1 produces more small gaps than exponential."""
        clustered = RenewalProcess(500.0, shape=0.5).sample(rng(3), WINDOW)
        memoryless = PoissonProcess(1 / 500.0).sample(rng(3), WINDOW)
        small = lambda t: np.mean(np.diff(t) < 50.0)  # noqa: E731
        assert small(clustered) > small(memoryless)


class TestCluster:
    def test_mean_rate_includes_offspring(self):
        process = ClusterProcess(parent_rate=1e-4, burst_mean=5.0)
        assert process.mean_rate() == pytest.approx(5e-4)

    def test_volume_matches_mean_rate(self):
        process = ClusterProcess(parent_rate=5e-5, burst_mean=6.0,
                                 burst_spread=60.0)
        times = process.sample(rng(4), WINDOW)
        expected = process.mean_rate() * WINDOW.duration
        assert abs(len(times) - expected) < 0.3 * expected + 50

    def test_burstiness_visible(self):
        """Cluster process has heavier short-gap mass than Poisson of the
        same total rate."""
        total_rate = 3e-4
        cluster = ClusterProcess(parent_rate=total_rate / 6, burst_mean=6.0,
                                 burst_spread=30.0).sample(rng(5), WINDOW)
        poisson = PoissonProcess(total_rate).sample(rng(5), WINDOW)
        frac = lambda t: np.mean(np.diff(t) < 10.0)  # noqa: E731
        assert frac(cluster) > 2 * frac(poisson)

    def test_offspring_inside_window(self):
        times = ClusterProcess(1e-4, 8.0, 120.0).sample(rng(6), WINDOW)
        assert np.all(times < WINDOW.end)

    def test_burst_mean_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterProcess(1.0, burst_mean=0.5)


class TestDiurnal:
    def test_amplitude_bounds(self):
        with pytest.raises(ConfigurationError):
            DiurnalPoissonProcess(1.0, amplitude=1.0)

    def test_volume(self):
        process = DiurnalPoissonProcess(base_rate=1e-3, amplitude=0.4)
        times = process.sample(rng(7), WINDOW)
        expected = 1e-3 * WINDOW.duration
        assert abs(len(times) - expected) < 5 * np.sqrt(expected) + 20

    def test_diurnal_pattern_present(self):
        process = DiurnalPoissonProcess(base_rate=5e-3, amplitude=0.8,
                                        phase=0.0)
        times = process.sample(rng(8), WINDOW)
        phases = (times % 86400.0) / 86400.0
        # Peak quarter (phase ~0.25 of the sine) vs trough quarter.
        peak = np.mean((phases > 0.125) & (phases < 0.375))
        trough = np.mean((phases > 0.625) & (phases < 0.875))
        assert peak > trough

    @given(st.floats(0.0, 0.9), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_always_sorted(self, amplitude, seed):
        process = DiurnalPoissonProcess(base_rate=1e-4, amplitude=amplitude)
        times = process.sample(rng(seed), Interval(0, 100000))
        assert np.all(np.diff(times) >= 0)
