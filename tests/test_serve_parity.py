"""Concurrency/parity suite: served bytes == serial CLI bytes.

The serving contract is *byte identity*: any document answered by the
daemon under concurrent mixed traffic must equal, byte for byte, what
``python -m repro query`` prints for the same query in a serial
process.  Both route through :mod:`repro.serve.queries` and canonical
JSON, so any drift -- float formatting, key order, windowing semantics,
lenient ingest -- shows up as a byte mismatch here.

The suite hammers one live daemon with 8 threads of shuffled
analyze/validate traffic across a clean bundle, a corruptor-damaged
bundle served leniently, and a bundle whose columnar sidecar has gone
stale behind edited text (the fallback-reparse path, raced).
"""

from __future__ import annotations

import json
import random
import shutil
import threading
from http.client import HTTPConnection

import pytest

from repro.cli import main
from repro.faults.corruptor import CorruptionConfig, corrupt_bundle
from repro.logs.bundle import read_bundle, read_manifest
from repro.logs.columnar import convert_bundle, usable_sidecar
from repro.obs.metrics import get_registry
from repro.serve.daemon import ServeApp, ServeDaemon
from repro.serve.queries import collection_window

THREADS = 8


@pytest.fixture(scope="module")
def corrupted_dir(bundle_dir, tmp_path_factory):
    """A line-damaged copy: strict reads refuse it, lenient reads
    quarantine.  Named ``damaged`` so CLI and daemon agree on the
    document's bundle name without coordination."""
    dest = tmp_path_factory.mktemp("parity") / "damaged"
    config = CorruptionConfig(truncate_rate=0.004, garble_rate=0.004,
                              drop_rate=0.002)
    corrupt_bundle(bundle_dir, dest, config, seed=42)
    return dest


def _make_stale(bundle_dir, dest) -> None:
    """Copy the bundle, build its sidecar, then edit the text behind it:
    the sidecar is now stale and the next read must fall back."""
    shutil.copytree(bundle_dir, dest)
    convert_bundle(dest)
    before = read_bundle(dest, columnar=False)
    last = before.error_records[-1]
    _, epoch = read_manifest(dest)
    stamp = epoch.format_iso(last.time_s + 1.0)
    with open(dest / "hwerr.log", "a") as handle:
        handle.write(f"{stamp}|{last.component}|appended hwerr line\n")
    sidecar = usable_sidecar(str(dest))
    assert sidecar is None or not sidecar.fresh()


def _fetch(daemon, path: str, payload: dict) -> tuple[int, bytes]:
    connection = HTTPConnection(daemon.host, daemon.port, timeout=300.0)
    try:
        connection.request(
            "POST", path, body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _hammer(daemon, queries: list[tuple[str, str, dict]],
            rounds: int = 1) -> dict[str, list[tuple[int, bytes]]]:
    """THREADS workers, each issuing every query in its own shuffled
    order; responses grouped by query id."""
    results: dict[str, list[tuple[int, bytes]]] = {
        qid: [] for qid, _, _ in queries}
    lock = threading.Lock()
    barrier = threading.Barrier(THREADS)
    failures: list[BaseException] = []

    def worker(index: int) -> None:
        rng = random.Random(f"parity:{index}")
        try:
            barrier.wait()
            for _ in range(rounds):
                plan = list(queries)
                rng.shuffle(plan)
                for qid, path, payload in plan:
                    got = _fetch(daemon, path, payload)
                    with lock:
                        results[qid].append(got)
        except BaseException as bad:  # surfaced after join
            failures.append(bad)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures
    return results


def _cli_bytes(capsys, argv: list[str]) -> bytes:
    capsys.readouterr()  # drop anything buffered
    assert main(argv) == 0
    return capsys.readouterr().out.encode("utf-8")


class TestConcurrentParity:
    def test_mixed_traffic_is_byte_identical_to_serial_cli(
            self, bundle_dir, corrupted_dir, bundle, capsys):
        collection = collection_window(bundle)
        span = collection.end - collection.start
        w1 = [collection.start, collection.start + round(span * 0.5, 3)]
        w2 = [collection.start + round(span * 0.25, 3), collection.end]
        queries = [
            ("an-full", "/analyze", {"bundle": bundle_dir.name}),
            ("an-w1", "/analyze", {"bundle": bundle_dir.name,
                                   "window": w1}),
            ("an-w2", "/analyze", {"bundle": bundle_dir.name,
                                   "window": w2}),
            ("va-full", "/validate", {"bundle": bundle_dir.name}),
            ("va-w1", "/validate", {"bundle": bundle_dir.name,
                                    "window": w1}),
            ("an-damaged", "/analyze", {"bundle": "damaged",
                                        "lenient": True}),
            ("va-damaged", "/validate", {"bundle": "damaged",
                                         "lenient": True}),
        ]
        app = ServeApp({bundle_dir.name: bundle_dir,
                        "damaged": corrupted_dir}, max_loaded=2)
        daemon = ServeDaemon(app).start_background()
        try:
            results = _hammer(daemon, queries)
        finally:
            daemon.shutdown()

        cli = {
            "an-full": ["query", "analyze", str(bundle_dir)],
            "an-w1": ["query", "analyze", str(bundle_dir),
                      "--window", f"{w1[0]}:{w1[1]}"],
            "an-w2": ["query", "analyze", str(bundle_dir),
                      "--window", f"{w2[0]}:{w2[1]}"],
            "va-full": ["query", "validate", str(bundle_dir)],
            "va-w1": ["query", "validate", str(bundle_dir),
                      "--window", f"{w1[0]}:{w1[1]}"],
            "an-damaged": ["query", "analyze", str(corrupted_dir),
                           "--lenient"],
            "va-damaged": ["query", "validate", str(corrupted_dir),
                           "--lenient"],
        }
        for qid, _, _ in queries:
            answers = results[qid]
            assert len(answers) == THREADS
            statuses = {status for status, _ in answers}
            assert statuses == {200}, (qid, statuses)
            bodies = {body for _, body in answers}
            assert len(bodies) == 1, f"{qid}: concurrent answers diverged"
            expected = _cli_bytes(capsys, cli[qid])
            assert bodies == {expected}, f"{qid}: daemon != CLI"

    def test_quarantined_bundle_needs_lenient(self, corrupted_dir, capsys):
        """Strict reads of the damaged bundle are refused identically on
        both paths (daemon 422, CLI exit 2); lenient documents report
        the quarantine."""
        app = ServeApp({"damaged": corrupted_dir})
        daemon = ServeDaemon(app).start_background()
        try:
            status, _ = _fetch(daemon, "/analyze", {"bundle": "damaged"})
            assert status == 422
            status, body = _fetch(daemon, "/analyze",
                                  {"bundle": "damaged", "lenient": True})
        finally:
            daemon.shutdown()
        assert status == 200
        document = json.loads(body)
        assert document["result"]["ingest"]["total_quarantined"] > 0
        capsys.readouterr()
        assert main(["query", "analyze", str(corrupted_dir)]) == 2
        assert "refused" in capsys.readouterr().err

    def test_stale_sidecar_fallback_under_load(self, bundle_dir, tmp_path,
                                               capsys):
        """8 threads hit a bundle whose sidecar is stale: exactly one
        load runs (single-flight), every answer is identical, the
        sidecar comes out refreshed, and the bytes match the CLI."""
        dest = tmp_path / "stale"
        _make_stale(bundle_dir, dest)
        registry = get_registry()
        loads_before = registry.counter_value("serve_bundle_loads_total")
        app = ServeApp({"stale": dest})
        daemon = ServeDaemon(app).start_background()
        try:
            results = _hammer(daemon, [
                ("an-stale", "/analyze", {"bundle": "stale"})])
        finally:
            daemon.shutdown()
        answers = results["an-stale"]
        assert {status for status, _ in answers} == {200}
        assert len({body for _, body in answers}) == 1
        assert registry.counter_value("serve_bundle_loads_total") \
            == loads_before + 1
        refreshed = usable_sidecar(str(dest))
        assert refreshed is not None and refreshed.fresh()
        expected = _cli_bytes(capsys, ["query", "analyze", str(dest)])
        assert answers[0][1] == expected

    def test_lru_churn_keeps_answers_correct(self, bundle_dir,
                                             corrupted_dir):
        """Capacity 1 with two bundles in play: every request evicts the
        other's handle, yet answers never change."""
        registry = get_registry()
        evictions_before = registry.counter_value(
            "serve_bundle_evictions_total")
        app = ServeApp({bundle_dir.name: bundle_dir,
                        "damaged": corrupted_dir},
                       max_loaded=1, result_cache_size=0)
        daemon = ServeDaemon(app).start_background()
        try:
            warm = {
                qid: _fetch(daemon, "/analyze", payload)
                for qid, payload in [
                    ("clean", {"bundle": bundle_dir.name}),
                    ("damaged", {"bundle": "damaged", "lenient": True})]
            }
            results = _hammer(daemon, [
                ("clean", "/analyze", {"bundle": bundle_dir.name}),
                ("damaged", "/analyze", {"bundle": "damaged",
                                         "lenient": True}),
            ])
        finally:
            daemon.shutdown()
        for qid, answers in results.items():
            assert {status for status, _ in answers} == {200}
            assert {body for _, body in answers} == {warm[qid][1]}
        assert registry.counter_value("serve_bundle_evictions_total") \
            > evictions_before
