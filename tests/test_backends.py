"""Pluggable campaign executor backends: queue, job-array, durability.

The contracts under test are this PR's acceptance criteria:

* backend specs parse (and fail) eagerly, and the supervisor reaches
  the same results through any backend -- a two-agent distributed
  campaign is byte-identical to the serial local pool;
* SIGKILLing a live worker agent mid-unit costs one lease
  reassignment, never an answer (``campaign_reassigned_total`` > 0,
  results unchanged);
* a coordinator killed mid-campaign resumes from its journal on a
  different "host" (directory) with zero re-executions of done units;
* liveness is decided from coordinator/parent-local monotonic
  *observation* times -- a worker with a wildly skewed wall clock is
  exactly as alive as its beats are recent;
* payload commits and journal creation fsync the containing directory
  (crash-durable renames, not just crash-durable bytes);
* the job-array backend renders a self-contained offline campaign that
  ``--resume`` collects without re-running anything;
* ``repro campaign-status`` reconstructs per-unit state and a
  resumability verdict from the journal alone.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.campaign.backends import (
    BACKEND_KINDS,
    AttemptTask,
    create_backend,
    parse_backend_spec,
    write_payload,
)
from repro.campaign.backends.jobarray import (
    JobArrayBackend,
    run_job_array_task,
)
from repro.campaign.backends.local import LocalBackend, _LiveAttempt
from repro.campaign.backends.queue import QueueBackend, encode_blob
from repro.campaign.status import (
    inspect_journal,
    render_status,
    scan_journals,
)
from repro.campaign.supervisor import (
    Journal,
    SupervisorPolicy,
    build_policy,
    run_supervised,
)
from repro.core.sharding import analyze_streamed
from repro.errors import CampaignExported, ConfigurationError
from repro.obs import scoped_registry
from repro.util.rngs import RngFactory

_SRC = str(Path(__file__).resolve().parents[1] / "src")
_ROOT = str(Path(__file__).resolve().parents[1])


def _queue_unit(value: int, seed: int) -> tuple[int, int]:
    """Module-level so worker agents can unpickle it by reference."""
    rng = RngFactory(seed + value).get("test/backend-unit")
    return value, int(rng.integers(0, 1_000_000))


def _queue_slow_unit(value: int, delay: float) -> int:
    time.sleep(delay)
    return value


def _units(n: int, seed: int = 7) -> list[dict]:
    return [dict(value=i, seed=seed) for i in range(n)]


def _clean(units: list[dict]) -> list:
    return [_queue_unit(**u) for u in units]


def _policy(journal_dir, **overrides) -> SupervisorPolicy:
    overrides.setdefault("journal_dir", str(journal_dir))
    overrides.setdefault("heartbeat_s", 0.2)
    overrides.setdefault("backoff_base_s", 0.01)
    overrides.setdefault("backoff_cap_s", 0.05)
    return SupervisorPolicy(**overrides)


def _worker_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC, _ROOT] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                         else []))
    return env


def _spawn_worker(port: int, name: str,
                  max_idle_s: float = 20.0) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--connect",
         f"127.0.0.1:{port}", "--max-idle-s", str(max_idle_s),
         "--name", name],
        env=_worker_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)


def _reap(workers: list[subprocess.Popen]) -> None:
    for worker in workers:
        if worker.poll() is None:
            worker.kill()
        worker.wait(timeout=30)


def _journal_events(journal_dir: Path, event: str) -> list[dict]:
    records = []
    for path in Path(journal_dir).glob("*.jsonl"):
        records += [r for r in Journal.read(path) if r.get("event") == event]
    return records


def _wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {what}")


class TestBackendSpec:
    def test_kinds(self):
        assert BACKEND_KINDS == ("local", "queue", "job-array")

    @pytest.mark.parametrize("spec,expected", [
        (None, ("local", {})),
        ("", ("local", {})),
        ("local", ("local", {})),
        ("queue:127.0.0.1:8471",
         ("queue", {"host": "127.0.0.1", "port": 8471})),
        ("queue:node-17.cluster:9000",
         ("queue", {"host": "node-17.cluster", "port": 9000})),
        ("job-array:/scratch/camp",
         ("job-array", {"directory": "/scratch/camp"})),
    ])
    def test_good_specs(self, spec, expected):
        assert parse_backend_spec(spec) == expected

    @pytest.mark.parametrize("bad", [
        "queue", "queue:", "queue:hostonly", "queue:host:",
        "queue:host:notaport", "queue::8471", "job-array", "job-array:",
        "local:extra", "slurm:whatever",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_backend_spec(bad)

    def test_policy_validates_backend_eagerly(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _policy(tmp_path, backend="queue:broken")

    def test_backend_flag_alone_activates_supervision(self):
        assert build_policy() is None
        policy = build_policy(backend="local")
        assert policy is not None and policy.backend == "local"
        assert build_policy(backend="job-array:x").backend == "job-array:x"

    def test_create_backend_local_default(self):
        backend = create_backend(None)
        assert isinstance(backend, LocalBackend)
        assert backend.kind == "local"


class TestDurability:
    """Satellite: committed renames must fsync the containing directory."""

    def test_write_payload_fsyncs_file_then_directory(self, tmp_path,
                                                      monkeypatch):
        calls: list[tuple[str, str]] = []
        real_fsync, real_replace = os.fsync, os.replace

        def spying_fsync(fd):
            target = os.readlink(f"/proc/self/fd/{fd}")
            calls.append(("fsync", target))
            return real_fsync(fd)

        def spying_replace(src, dst):
            calls.append(("replace", str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spying_fsync)
        monkeypatch.setattr(os, "replace", spying_replace)
        target = tmp_path / "unit-0.pkl"
        write_payload({"ok": True, "attempt": 0, "result": 1}, str(target))

        kinds = [kind for kind, _ in calls]
        assert kinds == ["fsync", "replace", "fsync"]
        # First fsync: the temp file's bytes; then the atomic rename;
        # then the *directory*, so the new dirent survives power loss.
        assert calls[1][1] == str(target)
        assert calls[2][1].rstrip("/") == str(tmp_path)

    def test_journal_creation_fsyncs_parent_dir(self, tmp_path,
                                                monkeypatch):
        import repro.campaign.supervisor as supervisor_mod

        synced: list[str] = []
        monkeypatch.setattr(supervisor_mod, "fsync_dir",
                            lambda p: synced.append(str(p)))
        journal = Journal(tmp_path / "deep" / "campaign.jsonl")
        journal.open()
        journal.close()
        assert synced == [str(tmp_path / "deep")]
        # Re-opening an existing journal must not re-sync.
        synced.clear()
        journal.open()
        journal.close()
        assert synced == []


class _FakeProcess:
    def is_alive(self) -> bool:
        return True


class TestClockSkew:
    """Satellite: liveness from observation times, never worker clocks."""

    def _entry(self, tmp_path: Path) -> _LiveAttempt:
        hb = tmp_path / "unit-0.a0.hb"
        hb.touch()
        # A worker clock stuck in 1970: mtime is ~56 years behind the
        # parent's wall clock and must not matter at all.
        os.utime(hb, ns=(1_000, 1_000))
        return _LiveAttempt(process=_FakeProcess(), index=0, attempt=0,
                            started_mono=0.0, result_path=tmp_path / "r",
                            heartbeat_path=hb)

    def test_local_epoch_mtime_beats_count(self, tmp_path):
        backend = LocalBackend()
        entry = self._entry(tmp_path)
        backend._check_liveness(entry, 100.0, timeout_s=None,
                                stale_after=5.0)
        assert entry.kill_reason is None
        assert entry.unit_started_mono == 100.0
        # The mtime *changes* (to another ancient value); observed at
        # parent-monotonic 104: still fresh, clock skew irrelevant.
        os.utime(entry.heartbeat_path, ns=(2_000, 2_000))
        backend._check_liveness(entry, 104.0, timeout_s=None,
                                stale_after=5.0)
        assert entry.kill_reason is None
        assert entry.last_beat_mono == 104.0

    def test_local_unchanged_mtime_goes_stale(self, tmp_path):
        backend = LocalBackend()
        entry = self._entry(tmp_path)
        backend._check_liveness(entry, 100.0, timeout_s=None,
                                stale_after=5.0)
        # No new beat observed for > stale_after of *parent* time.
        backend._check_liveness(entry, 106.0, timeout_s=None,
                                stale_after=5.0)
        assert entry.kill_reason == "stalled"

    def test_local_future_mtime_cannot_fake_liveness(self, tmp_path):
        """A clock jumped far ahead buys no extra staleness budget."""
        backend = LocalBackend()
        entry = self._entry(tmp_path)
        backend._check_liveness(entry, 100.0, timeout_s=None,
                                stale_after=5.0)
        future_ns = int((time.time() + 10 * 365 * 86400) * 1e9)
        os.utime(entry.heartbeat_path, ns=(future_ns, future_ns))
        backend._check_liveness(entry, 101.0, timeout_s=None,
                                stale_after=5.0)
        assert entry.kill_reason is None  # one observed change, fine
        backend._check_liveness(entry, 107.0, timeout_s=None,
                                stale_after=5.0)
        assert entry.kill_reason == "stalled"  # no further change

    def _attached_queue(self, tmp_path) -> QueueBackend:
        backend = QueueBackend("127.0.0.1", 0)
        journal = Journal(tmp_path / "wire.jsonl").open()
        registry_ctx = scoped_registry()
        registry = registry_ctx.__enter__()
        self._registry_ctx = registry_ctx
        backend.attach(policy=_policy(tmp_path, stale_after_s=5.0),
                       scratch=tmp_path, journal=journal,
                       registry=registry, trace_id="t-skew", key="k" * 64)
        return backend

    def test_queue_heartbeat_uses_receive_time_not_message_time(
            self, tmp_path):
        backend = self._attached_queue(tmp_path)
        try:
            backend.submit(AttemptTask(
                index=0, attempt=0, fn=_queue_unit, unit=dict(value=0),
                result_path=tmp_path / "r", heartbeat_path=tmp_path / "h",
                heartbeat_s=0.2))
            out: list = []
            backend._handle(1, {"op": "lease?"}, 50.0, out)
            lease = backend._leases[(0, 0)]
            assert lease.last_beat_mono == 50.0
            # The worker stamps an absurd wall-clock ts; the coordinator
            # must key liveness off its own receive-monotonic instead.
            backend._handle(1, {"op": "heartbeat", "index": 0,
                                "attempt": 0, "ts": 0.0}, 53.0, out)
            assert lease.last_beat_mono == 53.0
            # A heartbeat from a connection that does not hold the
            # lease never refreshes it.
            backend._handle(99, {"op": "heartbeat", "index": 0,
                                 "attempt": 0}, 60.0, out)
            assert lease.last_beat_mono == 53.0
        finally:
            backend.teardown()
            self._registry_ctx.__exit__(None, None, None)


class TestQueueWire:
    """White-box coordinator tests driven straight through ``_handle``."""

    @pytest.fixture
    def backend(self, tmp_path):
        backend = QueueBackend("127.0.0.1", 0)
        journal = Journal(tmp_path / "wire.jsonl").open()
        with scoped_registry() as registry:
            backend.attach(policy=_policy(tmp_path, stale_after_s=5.0),
                           scratch=tmp_path, journal=journal,
                           registry=registry, trace_id="t-wire",
                           key="k" * 64)
            self.registry = registry
            yield backend
        backend.teardown()
        journal.close()

    def _submit(self, backend, tmp_path, index=0):
        backend.submit(AttemptTask(
            index=index, attempt=0, fn=_queue_unit,
            unit=dict(value=index, seed=7),
            result_path=tmp_path / f"r{index}",
            heartbeat_path=tmp_path / f"h{index}", heartbeat_s=0.2))

    def _result_msg(self, index=0, attempt=0, worker="w1", result=42):
        return {"op": "result", "index": index, "attempt": attempt,
                "delivery": 0, "exit_code": 0, "kill_reason": None,
                "duration_s": 0.1, "worker": worker,
                "payload": encode_blob({"ok": True, "attempt": attempt,
                                        "result": result, "spans": [],
                                        "metrics": {}})}

    def test_duplicate_result_dropped_and_counted(self, backend, tmp_path):
        self._submit(backend, tmp_path)
        out: list = []
        backend._handle(1, {"op": "lease?"}, 1.0, out)
        backend._handle(1, self._result_msg(), 2.0, out)
        assert len(out) == 1 and out[0].status == "ok"
        assert out[0].payload["result"] == 42
        backend._handle(2, self._result_msg(worker="w2", result=99), 3.0,
                        out)
        assert len(out) == 1  # second answer dropped
        assert self.registry.counter_value(
            "campaign_duplicate_results_total") == 1
        assert len(_journal_events(tmp_path, "duplicate_result")) == 1

    def test_expired_lease_reassigns_then_stalls(self, backend, tmp_path):
        from repro.campaign.backends.queue import MAX_DELIVERIES

        self._submit(backend, tmp_path)
        out: list = []
        for delivery in range(MAX_DELIVERIES):
            backend._handle(1, {"op": "lease?"}, float(delivery), out)
            lease = backend._leases[(0, 0)]
            assert lease.delivery == delivery
            lease.last_beat_mono = time.monotonic() - 999.0
            out += backend.poll()  # expiry scan
        assert self.registry.counter_value(
            "campaign_lease_expired_total") == MAX_DELIVERIES
        assert self.registry.counter_value(
            "campaign_reassigned_total") == MAX_DELIVERIES - 1
        assert len(out) == 1
        assert out[0].status == "stalled"
        assert "lease expired" in out[0].error
        assert backend.in_flight == 0

    def test_late_original_supersedes_queued_redelivery(self, backend,
                                                        tmp_path):
        self._submit(backend, tmp_path)
        out: list = []
        backend._handle(1, {"op": "lease?"}, 1.0, out)
        backend._leases[(0, 0)].last_beat_mono = time.monotonic() - 999.0
        out += backend.poll()  # expire -> key back on the ready queue
        assert (0, 0) in backend._ready
        backend._handle(1, self._result_msg(), 2.0, out)
        assert len(out) == 1 and out[0].status == "ok"
        assert (0, 0) not in backend._ready  # redelivery cancelled

    def test_disconnect_expires_held_leases_immediately(self, backend,
                                                        tmp_path):
        from repro.campaign.backends.queue import _Conn

        left, right = socket.socketpair()
        backend._conns[1] = _Conn(sock=left)
        self._submit(backend, tmp_path)
        out: list = []
        backend._handle(1, {"op": "hello", "worker": "w1"}, 0.5, out)
        backend._handle(1, {"op": "lease?"}, 1.0, out)
        assert (0, 0) in backend._leases
        backend._handle(1, None, 2.0, out)  # EOF marker from the reader
        right.close()
        assert (0, 0) not in backend._leases
        assert (0, 0) in backend._ready  # reassigned, not stalled
        events = _journal_events(tmp_path, "lease_expired")
        assert events and events[0]["reason"] == "disconnect"


class TestQueueEndToEnd:
    def test_two_workers_match_serial(self, tmp_path):
        units = _units(6)
        serial = run_supervised(_queue_unit, units,
                                policy=_policy(tmp_path / "serial"))
        backend = QueueBackend("127.0.0.1", 0)
        _host, port = backend.address
        workers = [_spawn_worker(port, f"w{i}", max_idle_s=60.0)
                   for i in range(2)]
        try:
            policy = _policy(tmp_path / "queue",
                             backend=f"queue:127.0.0.1:{port}")
            report = run_supervised(_queue_unit, units, policy=policy,
                                    backend=backend)
        finally:
            _reap(workers)
        assert report.results == serial.results
        assert report.accounting.complete
        # Attempt records carry the worker identity in the journal.
        attempts = _journal_events(tmp_path / "queue", "attempt")
        assert attempts and all(a.get("worker", "").startswith("w")
                                for a in attempts)

    def test_sigkill_live_worker_mid_unit_reassigns(self, tmp_path):
        units = [dict(value=i, delay=1.5) for i in range(3)]
        backend = QueueBackend("127.0.0.1", 0)
        _host, port = backend.address
        journal_dir = tmp_path / "queue"
        victim = _spawn_worker(port, "victim", max_idle_s=60.0)
        survivor = _spawn_worker(port, "survivor", max_idle_s=60.0)
        killed = {"done": False}

        import threading

        def assassin():
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                leases = _journal_events(journal_dir, "lease")
                if any(lease["worker"] == "victim" for lease in leases):
                    time.sleep(0.3)  # let the unit actually start
                    os.kill(victim.pid, signal.SIGKILL)
                    killed["done"] = True
                    return
                time.sleep(0.05)

        thread = threading.Thread(target=assassin, daemon=True)
        try:
            policy = _policy(journal_dir, stale_after_s=3.0,
                             backend=f"queue:127.0.0.1:{port}")
            with scoped_registry() as registry:
                thread.start()
                report = run_supervised(_queue_slow_unit, units,
                                        policy=policy, backend=backend)
                reassigned = registry.counter_value(
                    "campaign_reassigned_total")
        finally:
            thread.join(timeout=30)
            _reap([victim, survivor])
        assert killed["done"], "victim never took a lease"
        assert report.results == [0, 1, 2]
        assert report.accounting.complete
        assert reassigned > 0
        goodbyes = _journal_events(journal_dir, "worker_goodbye")
        assert any(not g["clean"] for g in goodbyes)

    def test_kill_worker_chaos_round_trip(self, tmp_path):
        units = _units(5)
        serial = run_supervised(_queue_unit, units,
                                policy=_policy(tmp_path / "serial"))
        backend = QueueBackend("127.0.0.1", 0)
        _host, port = backend.address
        workers = [_spawn_worker(port, f"c{i}", max_idle_s=60.0)
                   for i in range(2)]
        try:
            policy = _policy(tmp_path / "queue", stale_after_s=2.0,
                             chaos="kill-worker@1",
                             backend=f"queue:127.0.0.1:{port}")
            with scoped_registry() as registry:
                report = run_supervised(_queue_unit, units, policy=policy,
                                        backend=backend)
                reassigned = registry.counter_value(
                    "campaign_reassigned_total")
        finally:
            _reap(workers)
        assert report.results == serial.results
        assert reassigned > 0

    def test_partition_chaos_expires_and_recovers(self, tmp_path):
        units = _units(4)
        serial = run_supervised(_queue_unit, units,
                                policy=_policy(tmp_path / "serial"))
        backend = QueueBackend("127.0.0.1", 0)
        _host, port = backend.address
        workers = [_spawn_worker(port, f"p{i}", max_idle_s=60.0)
                   for i in range(2)]
        try:
            # stale_after must clear the ~1s spawn-child boot, while the
            # partition must outlast stale_after so the lease expires.
            policy = _policy(tmp_path / "queue", stale_after_s=2.5,
                             chaos="partition@1:8",
                             backend=f"queue:127.0.0.1:{port}")
            with scoped_registry() as registry:
                report = run_supervised(_queue_unit, units, policy=policy,
                                        backend=backend)
                expired = registry.counter_value(
                    "campaign_lease_expired_total")
        finally:
            _reap(workers)
        assert report.results == serial.results
        assert expired > 0

    def test_chaos_agent_modes_inert_under_local_backend(self, tmp_path):
        """kill-worker/partition target agents; the local pool has none."""
        units = _units(3)
        policy = _policy(tmp_path, chaos="kill-worker@*,partition@*")
        report = run_supervised(_queue_unit, units, policy=policy)
        assert report.results == _clean(units)
        assert report.accounting.retried == 0


_COORDINATOR_DRIVER = textwrap.dedent("""\
    def main():
        from repro.campaign.backends.queue import QueueBackend
        from repro.campaign.supervisor import (
            SupervisorPolicy, run_supervised)
        from tests.test_backends import _queue_slow_unit
        backend = QueueBackend("127.0.0.1", {port})
        policy = SupervisorPolicy(
            heartbeat_s=0.2, backoff_base_s=0.01, backoff_cap_s=0.05,
            stale_after_s=4.0, journal_dir={journal_dir!r},
            backend="queue:127.0.0.1:{port}")
        run_supervised(_queue_slow_unit,
                       [dict(value=i, delay=1.0) for i in range(5)],
                       policy=policy, backend=backend)

    if __name__ == "__main__":
        main()
""")


class TestCoordinatorCrashResume:
    def test_resume_on_new_host_skips_done_units(self, tmp_path):
        """Host A's coordinator dies; host B resumes from the journal.

        "Host B" is a different journal directory, a fresh coordinator
        on a fresh port, and fresh agents -- nothing shared with host A
        but the journal and its committed payloads.
        """
        journal_a = tmp_path / "host-a"
        with socket.socket() as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind(("127.0.0.1", 0))
            port_a = probe.getsockname()[1]
        script = tmp_path / "coordinator.py"
        script.write_text(_COORDINATOR_DRIVER.format(
            port=port_a, journal_dir=str(journal_a)))
        coordinator = subprocess.Popen(
            [sys.executable, str(script)], env=_worker_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        workers_a = [_spawn_worker(port_a, f"a{i}", max_idle_s=60.0)
                     for i in range(2)]
        try:
            _wait_for(
                lambda: len(_journal_events(journal_a, "done")) >= 2,
                timeout=60, what="two committed units on host A")
            os.kill(coordinator.pid, signal.SIGKILL)
            coordinator.wait(timeout=30)
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.wait(timeout=30)
            _reap(workers_a)

        done_a = {r["unit"] for r in _journal_events(journal_a, "done")}
        assert len(done_a) >= 2
        journal_b = tmp_path / "host-b"
        shutil.copytree(journal_a, journal_b)

        status = inspect_journal(scan_journals(journal_b)[0])
        assert not status.ended
        assert set(status.resumable_units) >= done_a
        assert "resumable" in status.verdict

        backend_b = QueueBackend("127.0.0.1", 0)
        _host, port_b = backend_b.address
        workers_b = [_spawn_worker(port_b, f"b{i}", max_idle_s=60.0)
                     for i in range(2)]
        try:
            policy = _policy(journal_b, stale_after_s=4.0, resume=True,
                             backend=f"queue:127.0.0.1:{port_b}")
            report = run_supervised(
                _queue_slow_unit,
                [dict(value=i, delay=1.0) for i in range(5)],
                policy=policy, backend=backend_b)
        finally:
            _reap(workers_b)
        assert report.results == [0, 1, 2, 3, 4]
        assert report.accounting.resumed == len(done_a)
        # Zero re-executions: host B's journal (host A's records plus
        # the resume run's appends) never dispatches a done unit again.
        dispatches_a = [r["unit"]
                        for r in _journal_events(journal_a, "dispatch")]
        dispatches_b = [r["unit"]
                        for r in _journal_events(journal_b, "dispatch")]
        new_dispatches = dispatches_b[len(dispatches_a):]
        assert not set(new_dispatches) & done_a


class TestStreamedQueueParity:
    def test_streamed_analyze_matches_local(self, bundle_dir, tmp_path):
        plain = analyze_streamed(bundle_dir, shards=2)
        backend_port = None
        with socket.socket() as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind(("127.0.0.1", 0))
            backend_port = probe.getsockname()[1]
        # One agent pair serves both phase campaigns: each phase binds
        # the same port, the agents reconnect in between.
        workers = [_spawn_worker(backend_port, f"s{i}", max_idle_s=60.0)
                   for i in range(2)]
        try:
            policy = _policy(tmp_path, stale_after_s=15.0,
                             backend=f"queue:127.0.0.1:{backend_port}")
            distributed = analyze_streamed(bundle_dir, shards=2,
                                           policy=policy)
        finally:
            _reap(workers)
        assert distributed.complete
        assert json.dumps(distributed.summary(), sort_keys=True) == \
            json.dumps(plain.summary(), sort_keys=True)


class TestJobArray:
    def test_export_run_resume_roundtrip(self, tmp_path):
        units = _units(4)
        export_dir = tmp_path / "export"
        policy = _policy(tmp_path / "journal",
                         backend=f"job-array:{export_dir}")
        with pytest.raises(CampaignExported) as excinfo:
            run_supervised(_queue_unit, units, policy=policy,
                           backend=JobArrayBackend(export_dir))
        assert excinfo.value.tasks == len(units)
        script = export_dir / "job-array.sh"
        assert script.exists() and os.access(script, os.X_OK)
        assert "SLURM_ARRAY_TASK_ID" in script.read_text()
        assert sorted(p.name for p in (export_dir / "tasks").iterdir()) \
            == [f"task-{i:05d}.pkl" for i in range(len(units))]

        for task_id in range(len(units)):
            assert run_job_array_task(export_dir, task_id) == 0
        # At-most-once: re-running a committed task is a no-op exit 0.
        assert run_job_array_task(export_dir, 0) == 0
        attempts = _journal_events(tmp_path / "journal", "attempt")
        assert len([a for a in attempts if a["unit"] == 0]) == 1

        resume = _policy(tmp_path / "journal", resume=True,
                         backend=f"job-array:{export_dir}")
        report = run_supervised(_queue_unit, units, policy=resume,
                                backend=JobArrayBackend(export_dir))
        assert report.results == _clean(units)
        assert report.accounting.resumed == len(units)
        assert report.accounting.attempts == 0

        # A complete job-array campaign keeps its payloads: multi-phase
        # runs re-fold every earlier campaign on each --resume
        # invocation, so reaping would force a re-export of finished
        # work.  A second resume must therefore be a pure no-op again.
        scratch = report.journal_path.parent / report.journal_path.stem
        assert scratch.is_dir()
        again = run_supervised(_queue_unit, units, policy=resume,
                               backend=JobArrayBackend(export_dir))
        assert again.results == _clean(units)
        assert again.accounting.attempts == 0

    def test_offline_attempts_record_worker_identity(self, tmp_path):
        units = _units(2)
        export_dir = tmp_path / "export"
        policy = _policy(tmp_path / "journal",
                         backend=f"job-array:{export_dir}")
        with pytest.raises(CampaignExported):
            run_supervised(_queue_unit, units, policy=policy,
                           backend=JobArrayBackend(export_dir))
        run_job_array_task(export_dir, 1)
        attempts = _journal_events(tmp_path / "journal", "attempt")
        assert attempts[-1]["worker"] == "job-array/1"


class TestCampaignStatus:
    def test_complete_campaign_verdict(self, tmp_path):
        run_supervised(_queue_unit, _units(3), policy=_policy(tmp_path))
        path = scan_journals(tmp_path)[0]
        status = inspect_journal(path)
        assert status.ended and status.verdict == "complete"
        assert status.done == [0, 1, 2]
        text = render_status(status)
        assert "resume verdict: complete" in text

    def test_partial_campaign_is_resumable(self, tmp_path):
        policy = _policy(tmp_path, retries=0, chaos="crash@1x9",
                         allow_partial=True)
        run_supervised(_queue_unit, _units(3), policy=policy)
        status = inspect_journal(scan_journals(tmp_path)[0])
        assert status.quarantined == [1]
        assert set(status.resumable_units) == {0, 2}
        assert "resumable: 2/3" in status.verdict
        assert "quarantined" in status.verdict
        text = render_status(status, verbose=True)
        assert "unit 1: quarantined" in text

    def test_foreign_file_is_unreadable(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"event": "noise"}\n')
        status = inspect_journal(bogus)
        assert status.verdict == "unreadable (no begin record)"

    def test_scan_journals(self, tmp_path):
        with pytest.raises(ConfigurationError):
            scan_journals(tmp_path / "missing")
        (tmp_path / "a.jsonl").write_text("")
        (tmp_path / "b.jsonl").write_text("")
        assert [p.name for p in scan_journals(tmp_path)] == \
            ["a.jsonl", "b.jsonl"]
        assert scan_journals(tmp_path / "a.jsonl") == [tmp_path / "a.jsonl"]

    def test_cli_campaign_status(self, tmp_path, capsys):
        from repro.cli import main

        run_supervised(_queue_unit, _units(2), policy=_policy(tmp_path))
        assert main(["campaign-status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "resume verdict: complete" in out
        assert main(["campaign-status", str(tmp_path / "nope")]) == 2


class TestWorkerCli:
    def test_bad_connect_address_rejected(self, capsys):
        from repro.cli import main

        assert main(["worker", "--connect", "nocolon"]) == 2
        assert main(["worker", "--connect", "host:notaport"]) == 2
        assert main(["worker"]) == 2
        assert main(["worker", "--job-array", "/tmp/x",
                     "--connect", "h:1"]) == 2
        assert main(["worker", "--job-array", "/tmp/x"]) == 2
        capsys.readouterr()

    def test_idle_worker_exits_zero(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "worker", "--connect",
             f"127.0.0.1:{dead_port}", "--max-idle-s", "1.0"],
            env=_worker_env(), capture_output=True, timeout=60)
        assert proc.returncode == 0
