"""Tests for machine assembly: components, blueprints, node lookups."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.blueprints import (
    BLUE_WATERS,
    MachineBlueprint,
    build_machine,
    scaled_blueprint,
)
from repro.machine.cname import ComponentKind, parse_cname
from repro.machine.nodetypes import NODE_SPECS, NodeType


class TestBlueprint:
    def test_blue_waters_counts(self):
        assert BLUE_WATERS.n_xe == 22640
        assert BLUE_WATERS.n_xk == 4224

    def test_rounds_up_to_blades(self):
        bp = MachineBlueprint(n_xe=5, n_xk=0, n_service=0)
        assert bp.xe_blades == 2
        assert bp.total_nodes == 8

    def test_no_compute_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineBlueprint(n_xe=0, n_xk=0, n_service=8)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineBlueprint(n_xe=-4, n_xk=0, n_service=0)

    def test_scaled_preserves_types(self):
        bp = scaled_blueprint(0.001)
        assert bp.n_xe >= 4 and bp.n_xk >= 4 and bp.n_service >= 4

    def test_scaled_ratios_roughly_preserved(self):
        bp = scaled_blueprint(0.1)
        ratio = bp.n_xe / bp.n_xk
        assert ratio == pytest.approx(22640 / 4224, rel=0.05)

    def test_scale_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            scaled_blueprint(0.0)


class TestBuildMachine:
    @pytest.fixture(scope="class")
    def machine(self):
        return build_machine(MachineBlueprint(n_xe=96, n_xk=48, n_service=8))

    def test_counts(self, machine):
        assert machine.count(NodeType.XE) == 96
        assert machine.count(NodeType.XK) == 48
        assert machine.count(NodeType.SERVICE) == 8

    def test_node_ids_dense(self, machine):
        assert [n.node_id for n in machine.nodes] == list(range(len(machine)))

    def test_unique_cnames(self, machine):
        names = {str(n.name) for n in machine.nodes}
        assert len(names) == len(machine)

    def test_node_by_name(self, machine):
        node = machine.nodes[17]
        assert machine.node_by_name(str(node.name)) is node

    def test_node_by_name_unknown(self, machine):
        with pytest.raises(ConfigurationError):
            machine.node_by_name("c30-30c0s0n0")

    def test_blades_homogeneous(self, machine):
        for blade in machine.blades:
            types = {machine.node(i).node_type for i in blade.node_ids}
            assert types == {blade.node_type}

    def test_gemini_pairing(self, machine):
        for blade in machine.blades:
            g0, g1 = blade.gemini_vertices
            assert machine.node(blade.node_ids[0]).gemini_vertex == g0
            assert machine.node(blade.node_ids[3]).gemini_vertex == g1

    def test_nodes_on_gemini(self, machine):
        blade = machine.blades[0]
        on_g0 = machine.nodes_on_gemini(blade.gemini_vertices[0])
        assert {n.node_id for n in on_g0} == set(blade.node_ids[:2])

    def test_components_enumeration(self, machine):
        blades = list(machine.components(ComponentKind.BLADE))
        assert len(blades) == len(machine.blades)
        gpus = list(machine.components(ComponentKind.ACCELERATOR))
        assert len(gpus) == machine.count(NodeType.XK)

    def test_nodes_under_blade(self, machine):
        blade = machine.blades[3]
        under = machine.nodes_under(blade.name)
        assert {n.node_id for n in under} == set(blade.node_ids)

    def test_nodes_under_cabinet(self, machine):
        cabinet = parse_cname("c0-0")
        under = machine.nodes_under(cabinet)
        assert 0 < len(under) <= 96

    def test_summary_keys(self, machine):
        summary = machine.summary()
        assert summary["nodes_total"] == len(machine)
        assert summary["gpus"] == machine.count(NodeType.XK)

    def test_nid_format(self, machine):
        assert machine.node(7).nid == "nid00007"

    def test_vector_views(self, machine):
        assert machine.node_type_codes.shape == (len(machine),)
        assert machine.gemini_vertices.shape == (len(machine),)


class TestNodeSpecs:
    def test_xk_has_gpu(self):
        assert NodeType.XK.has_gpu
        assert not NodeType.XE.has_gpu

    def test_service_not_compute(self):
        assert not NodeType.SERVICE.is_compute

    def test_specs_cover_all_types(self):
        assert set(NODE_SPECS) == set(NodeType)

    def test_description_mentions_gpu(self):
        assert "GPU" in NODE_SPECS[NodeType.XK].description
        assert "GPU" not in NODE_SPECS[NodeType.XE].description
