"""Tests for metrics, scaling curves, MTBF, and waste over hand-built
diagnosed runs."""

import pytest

from repro.core.categorize import DiagnosedOutcome, DiagnosedRun
from repro.core.filtering import ErrorCluster
from repro.core.ingest import RunView
from repro.core.metrics import (
    cause_breakdown,
    outcome_breakdown,
    runs_by_scale,
    workload_by_app,
)
from repro.core.mtbf import application_mtbf, system_mtbf_by_category
from repro.core.scaling import failure_probability_curve, fit_hazard_exponent
from repro.core.waste import lost_node_hours_distribution, waste_report
from repro.errors import AnalysisError
from repro.faults.taxonomy import ErrorCategory
from repro.util.intervals import Interval


def view(apid, *, nodes=4, hours=1.0, node_type="XE", cmd="app",
         launch_error=False):
    return RunView(apid=apid, batch_id="1.bw", user="u", cmd=cmd,
                   nids=tuple(range(nodes)), start_s=0.0,
                   end_s=hours * 3600.0, exit_code=0, exit_signal=0,
                   launch_error=launch_error, node_type=node_type,
                   gemini_vertices=())


def diag(apid, outcome, *, category=None, **kwargs):
    return DiagnosedRun(run=view(apid, **kwargs), outcome=outcome,
                        category=category)


@pytest.fixture
def sample():
    return [
        diag(1, DiagnosedOutcome.SUCCESS, nodes=10, hours=2.0),
        diag(2, DiagnosedOutcome.SUCCESS, nodes=10, hours=2.0),
        diag(3, DiagnosedOutcome.USER, nodes=2, hours=1.0),
        diag(4, DiagnosedOutcome.SYSTEM, category=ErrorCategory.MCE,
             nodes=100, hours=3.0),
        diag(5, DiagnosedOutcome.UNKNOWN, nodes=50, hours=1.0,
             node_type="XK"),
        diag(6, DiagnosedOutcome.WALLTIME, nodes=4, hours=10.0),
    ]


class TestBreakdown:
    def test_counts(self, sample):
        b = outcome_breakdown(sample)
        assert b.total_runs == 6
        assert b.counts[DiagnosedOutcome.SUCCESS] == 2

    def test_shares_sum_to_one(self, sample):
        b = outcome_breakdown(sample)
        assert sum(b.share(o) for o in DiagnosedOutcome) == pytest.approx(1.0)

    def test_system_failure_share_includes_unknown(self, sample):
        b = outcome_breakdown(sample)
        assert b.system_failure_share == pytest.approx(2 / 6)

    def test_node_hours(self, sample):
        b = outcome_breakdown(sample)
        assert b.node_hours[DiagnosedOutcome.SYSTEM] == pytest.approx(300.0)

    def test_failed_node_hour_share(self, sample):
        b = outcome_breakdown(sample)
        total = 20 + 20 + 2 + 300 + 50 + 40
        failed = 2 + 300 + 50 + 40
        assert b.failed_node_hour_share == pytest.approx(failed / total)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            outcome_breakdown([])


class TestCausesAndWorkload:
    def test_cause_breakdown(self, sample):
        causes = cause_breakdown(sample)
        assert causes == {ErrorCategory.MCE: 1}

    def test_workload_by_app_sorted_by_node_hours(self, sample):
        rows = workload_by_app(sample)
        node_hours = [row["node_hours"] for row in rows.values()]
        assert node_hours == sorted(node_hours, reverse=True)

    def test_runs_by_scale(self, sample):
        rows = runs_by_scale(sample, (1, 10, 100, 1000))
        assert sum(r["runs"] for r in rows) == len(
            [d for d in sample if d.run.node_type in ("XE", "XK")])

    def test_runs_by_scale_filters_node_type(self, sample):
        rows = runs_by_scale(sample, (1, 1000), node_type="XK")
        assert sum(r["runs"] for r in rows) == 1


class TestScalingCurve:
    def make_diagnosed(self):
        out = []
        apid = 0
        # 100 small runs, 2 fail; 50 big runs, 10 fail.
        for _ in range(98):
            apid += 1
            out.append(diag(apid, DiagnosedOutcome.SUCCESS, nodes=10))
        for _ in range(2):
            apid += 1
            out.append(diag(apid, DiagnosedOutcome.SYSTEM,
                            category=ErrorCategory.MCE, nodes=10))
        for _ in range(40):
            apid += 1
            out.append(diag(apid, DiagnosedOutcome.SUCCESS, nodes=1000))
        for _ in range(10):
            apid += 1
            out.append(diag(apid, DiagnosedOutcome.UNKNOWN, nodes=1000))
        return out

    def test_probabilities(self):
        curve = failure_probability_curve(self.make_diagnosed(),
                                          (1, 100, 10000), node_type="XE")
        points = curve.nonempty()
        assert points[0].probability == pytest.approx(0.02)
        assert points[1].probability == pytest.approx(0.2)

    def test_unknown_excluded_when_asked(self):
        curve = failure_probability_curve(self.make_diagnosed(),
                                          (1, 100, 10000), node_type="XE",
                                          include_unknown=False)
        assert curve.nonempty()[1].probability == 0.0

    def test_launch_failures_excluded_by_default(self):
        diagnosed = [diag(1, DiagnosedOutcome.SYSTEM,
                          category=ErrorCategory.ALPS_SOFTWARE,
                          launch_error=True),
                     diag(2, DiagnosedOutcome.SUCCESS)]
        curve = failure_probability_curve(diagnosed, (1, 100))
        assert curve.points[0].runs == 1

    def test_ci_brackets_estimate(self):
        curve = failure_probability_curve(self.make_diagnosed(),
                                          (1, 100, 10000))
        for point in curve.nonempty():
            assert point.ci_low <= point.probability <= point.ci_high

    def test_growth_factor(self):
        curve = failure_probability_curve(self.make_diagnosed(),
                                          (1, 100, 10000))
        assert curve.growth_factor() == pytest.approx(10.0)

    def test_hazard_exponent_positive_for_growing_curve(self):
        curve = failure_probability_curve(self.make_diagnosed(),
                                          (1, 100, 10000))
        gamma, _c = fit_hazard_exponent(curve)
        assert gamma > 0


class TestMtbf:
    def test_application_mtbf(self, sample):
        report = application_mtbf(sample)
        assert report.system_failures == 2
        assert report.app_mtbf_hours == pytest.approx(19.0 / 2)

    def test_mnbf(self, sample):
        report = application_mtbf(sample)
        assert report.mnbf_node_hours == pytest.approx(432.0 / 2)

    def test_no_failures_infinite(self):
        report = application_mtbf([diag(1, DiagnosedOutcome.SUCCESS)])
        assert report.app_mtbf_hours == float("inf")

    def test_node_type_filter(self, sample):
        report = application_mtbf(sample, node_type="XK")
        assert report.total_runs == 1
        assert report.system_failures == 1

    def test_system_mtbf_by_category(self):
        clusters = [
            ErrorCluster(0, ErrorCategory.MCE, 0.0, 1.0, ("a",), 1),
            ErrorCluster(1, ErrorCategory.MCE, 10.0, 11.0, ("b",), 1),
            ErrorCluster(2, ErrorCategory.DRAM_CORRECTABLE, 5.0, 6.0,
                         ("c",), 1),
        ]
        mtbf = system_mtbf_by_category(clusters, Interval(0, 72000.0))
        assert mtbf[ErrorCategory.MCE] == pytest.approx(10.0)
        assert ErrorCategory.DRAM_CORRECTABLE not in mtbf

    def test_zero_window_rejected(self):
        with pytest.raises(AnalysisError):
            system_mtbf_by_category([], Interval(5, 5))


class TestWaste:
    def test_report(self, sample):
        report = waste_report(sample)
        assert report.failed_runs == 4
        assert report.system_failed_runs == 2
        assert report.failed_share == pytest.approx(392.0 / 432.0)
        assert report.energy_mwh_failed > 0

    def test_distribution_sorted(self, sample):
        losses = lost_node_hours_distribution(sample, system_only=False)
        assert list(losses) == sorted(losses)
        assert len(losses) == 4

    def test_system_only_distribution(self, sample):
        losses = lost_node_hours_distribution(sample, system_only=True)
        assert len(losses) == 2

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            waste_report([])
