"""Serving daemon: endpoint semantics, refusals, caches, drain.

Most cases drive :class:`ServeApp.handle` directly -- the app maps
``(method, path, body)`` to ``(status, content-type, bytes)`` with no
socket in the way, which keeps every negative path cheap and exact.
Socket-level behavior (HTTP framing, metric endpoint labels, drain
visible over the wire) runs against one module-scoped live daemon.
Byte parity with the CLI under concurrency lives in
``test_serve_parity.py``; load characteristics in ``test_loadgen.py``.
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.logs.bundle import read_bundle
from repro.obs.metrics import get_registry
from repro.serve.daemon import (
    BundleCache,
    ServeApp,
    ServeDaemon,
    parse_bundle_specs,
)
from repro.serve.queries import QUERY_SCHEMA, collection_window


def post(app: ServeApp, path: str, payload) -> tuple[int, dict]:
    body = payload if isinstance(payload, bytes) \
        else json.dumps(payload).encode("utf-8")
    status, content_type, response = app.handle("POST", path, body)
    assert content_type == "application/json"
    return status, json.loads(response)


@pytest.fixture()
def app(bundle_dir) -> ServeApp:
    return ServeApp({"b": bundle_dir})


class TestBundleSpecs:
    def test_bare_path_registers_under_basename(self, bundle_dir):
        specs = parse_bundle_specs([str(bundle_dir)])
        assert specs == {bundle_dir.name: bundle_dir}

    def test_named_spec(self, bundle_dir):
        specs = parse_bundle_specs([f"prod={bundle_dir}"])
        assert specs == {"prod": bundle_dir}

    def test_duplicate_names_rejected(self, bundle_dir):
        with pytest.raises(ValueError, match="duplicate"):
            parse_bundle_specs([f"x={bundle_dir}", f"x={bundle_dir}"])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="bad bundle spec"):
            parse_bundle_specs(["=somewhere"])

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="manifest.json"):
            ServeApp({"empty": tmp_path})

    def test_no_bundles_rejected(self):
        with pytest.raises(ValueError, match="no bundles"):
            ServeApp({})


class TestRefusals:
    """Every malformed request maps to the documented status, and the
    body is always a canonical error document."""

    def test_unknown_endpoint_404(self, app):
        status, body = post(app, "/frobnicate", {"bundle": "b"})
        assert status == 404
        assert body["schema"] == QUERY_SCHEMA
        assert body["error"]["status"] == 404

    def test_unknown_bundle_404(self, app):
        status, body = post(app, "/analyze", {"bundle": "nope"})
        assert status == 404
        assert "nope" in body["error"]["message"]
        assert "'b'" in body["error"]["message"]  # names what IS served

    def test_malformed_json_400(self, app):
        status, body = post(app, "/analyze", b"{not json")
        assert status == 400

    def test_non_object_body_400(self, app):
        status, body = post(app, "/analyze", b"[1, 2]")
        assert status == 400
        assert "object" in body["error"]["message"]

    def test_missing_bundle_key_400(self, app):
        status, _ = post(app, "/analyze", {})
        assert status == 400

    def test_oversized_body_400(self, app):
        huge = b'{"bundle": "' + b"x" * 70_000 + b'"}'
        status, body = post(app, "/analyze", huge)
        assert status == 400
        assert "exceeds" in body["error"]["message"]

    @pytest.mark.parametrize("window", [
        [5.0, 2.0],                      # inverted
        [1.0, 1.0],                      # empty
        ["a", "b"],                      # non-numeric
        [0.0, float("inf")],             # non-finite
        [float("nan"), 10.0],            # NaN
        [0.0],                           # wrong arity
    ])
    def test_bad_window_422(self, app, window):
        body = json.loads(json.dumps({"bundle": "b", "window": window}))
        status, _ = post(app, "/analyze", body)
        assert status == 422

    def test_oversized_window_422(self, app, bundle):
        collection = collection_window(bundle)
        status, body = post(app, "/analyze", {
            "bundle": "b",
            "window": [collection.start, collection.end + 1.0]})
        assert status == 422
        assert "exceeds" in body["error"]["message"]

    def test_window_with_stream_422(self, app):
        status, body = post(app, "/analyze", {
            "bundle": "b", "stream": True, "window": [0.0, 1.0]})
        assert status == 422
        assert "mutually exclusive" in body["error"]["message"]

    def test_out_of_range_shards_422(self, app):
        for shards in (0, -1, 65, "many", 2.5):
            status, _ = post(app, "/analyze", {
                "bundle": "b", "stream": True, "shards": shards})
            assert status == 422, shards

    def test_non_boolean_flag_422(self, app):
        status, _ = post(app, "/analyze", {"bundle": "b", "lenient": "yes"})
        assert status == 422

    def test_bad_jobs_422(self, app):
        status, _ = post(app, "/analyze", {"bundle": "b", "jobs": 0})
        assert status == 422


class TestHealthAndDrain:
    def test_ok_then_draining(self, app):
        code, _, response = app.handle("GET", "/healthz", b"")
        assert code == 200
        assert json.loads(response)["status"] == "ok"
        app.begin_drain()
        code, _, response = app.handle("GET", "/healthz", b"")
        assert code == 503
        assert json.loads(response)["status"] == "draining"

    def test_drain_does_not_refuse_queries(self, app):
        """Draining stops *routing* (healthz 503), not in-flight or
        queued work -- queries still answer."""
        app.begin_drain()
        status, body = post(app, "/analyze", {"bundle": "b"})
        assert status == 200
        assert body["schema"] == QUERY_SCHEMA

    def test_trailing_slash_is_tolerated(self, app):
        code, _, _ = app.handle("GET", "/healthz/", b"")
        assert code == 200


class TestBundlesEndpoint:
    def test_loaded_flags_track_the_cache(self, app, bundle_dir):
        code, _, response = app.handle("GET", "/bundles", b"")
        rows = json.loads(response)["bundles"]
        assert rows == [{"name": "b", "path": str(bundle_dir),
                         "loaded_strict": False, "loaded_lenient": False}]
        post(app, "/analyze", {"bundle": "b"})
        code, _, response = app.handle("GET", "/bundles", b"")
        (row,) = json.loads(response)["bundles"]
        assert row["loaded_strict"] is True
        assert row["loaded_lenient"] is False


class TestBundleCache:
    def test_single_flight_loads_once(self, bundle):
        """32 threads racing a cold key must run the loader exactly
        once; everyone gets the same object."""
        cache = BundleCache(capacity=2)
        loads = []
        barrier = threading.Barrier(32)
        got = []

        def loader():
            loads.append(1)
            time.sleep(0.05)  # widen the race window
            return bundle

        def race():
            barrier.wait()
            got.append(cache.get(("b", False), loader))

        threads = [threading.Thread(target=race) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(loads) == 1
        assert all(handle is bundle for handle in got)

    def test_lru_evicts_least_recently_used(self, bundle):
        cache = BundleCache(capacity=2)
        cache.get(("a", False), lambda: bundle)
        cache.get(("b", False), lambda: bundle)
        cache.get(("a", False), lambda: bundle)  # refresh a
        cache.get(("c", False), lambda: bundle)  # evicts b
        assert cache.loaded_keys() == [("a", False), ("c", False)]

    def test_eviction_does_not_invalidate_held_handles(self, bundle_dir):
        """An in-flight request holds its own reference; eviction only
        drops the cache's.  The held handle keeps answering."""
        cache = BundleCache(capacity=1)
        held = cache.get(("b", False), lambda: read_bundle(bundle_dir))
        cache.get(("other", False),
                  lambda: read_bundle(bundle_dir))  # evicts ("b", False)
        assert cache.loaded_keys() == [("other", False)]
        assert len(held.alps_records) > 0  # still fully usable

    def test_strict_and_lenient_are_distinct_keys(self, bundle):
        cache = BundleCache(capacity=4)
        cache.get(("b", False), lambda: bundle)
        cache.get(("b", True), lambda: bundle)
        assert set(cache.loaded_keys()) == {("b", False), ("b", True)}


class TestResultCache:
    def test_repeat_query_is_served_from_bytes(self, app):
        registry = get_registry()
        before = registry.counter_value("serve_result_cache_total",
                                        result="hit")
        first = app.handle("POST", "/analyze",
                           json.dumps({"bundle": "b"}).encode())
        second = app.handle("POST", "/analyze",
                            json.dumps({"bundle": "b"}).encode())
        assert first == second  # same status, type, and exact bytes
        assert registry.counter_value("serve_result_cache_total",
                                      result="hit") == before + 1

    def test_differently_phrased_equal_queries_share_an_entry(self, app):
        """Normalization makes {"bundle": "b"} and the explicit-defaults
        phrasing one cache key -- and one set of response bytes."""
        registry = get_registry()
        before = registry.counter_value("serve_result_cache_total",
                                        result="hit")
        first = app.handle("POST", "/analyze",
                           json.dumps({"bundle": "b"}).encode())
        second = app.handle(
            "POST", "/analyze",
            json.dumps({"bundle": "b", "lenient": False, "stream": False,
                        "window": None}).encode())
        assert first == second
        assert registry.counter_value("serve_result_cache_total",
                                      result="hit") == before + 1


@pytest.fixture(scope="module")
def live(bundle_dir):
    app = ServeApp({"live": bundle_dir}, max_loaded=2)
    daemon = ServeDaemon(app).start_background()
    yield daemon
    daemon.shutdown()


def _http(daemon: ServeDaemon, method: str, path: str, payload=None):
    connection = HTTPConnection(daemon.host, daemon.port, timeout=120.0)
    try:
        body = None if payload is None \
            else json.dumps(payload).encode("utf-8")
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json"}
                           if body else {})
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


class TestLiveDaemon:
    def test_ephemeral_port_is_real(self, live):
        assert live.host == "127.0.0.1"
        assert live.port > 0

    def test_analyze_over_the_wire(self, live):
        status, body = _http(live, "POST", "/analyze", {"bundle": "live"})
        assert status == 200
        assert json.loads(body)["query"]["bundle"] == "live"

    def test_unknown_paths_pool_into_one_metric_label(self, live):
        """A scanner probing random paths must not mint unbounded label
        values; everything unknown lands on endpoint="other"."""
        registry = get_registry()
        before = registry.counter_value("serve_requests_total",
                                        endpoint="other", status="404")
        for path in ("/admin", "/wp-login.php", "/x/y/z"):
            status, _ = _http(live, "GET", path)
            assert status == 404
        assert registry.counter_value(
            "serve_requests_total", endpoint="other",
            status="404") == before + 3

    def test_metrics_exposition_over_the_wire(self, live):
        _http(live, "GET", "/healthz")
        status, body = _http(live, "GET", "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_requests_total{endpoint="/healthz",status="200"}' \
            in text
        assert "# TYPE serve_latency_seconds histogram" in text

    def test_healthz_flips_to_503_on_drain_then_shutdown(self, bundle_dir):
        app = ServeApp({"d": bundle_dir})
        daemon = ServeDaemon(app).start_background()
        try:
            status, _ = _http(daemon, "GET", "/healthz")
            assert status == 200
            app.begin_drain()
            status, body = _http(daemon, "GET", "/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "draining"
        finally:
            daemon.shutdown()
        with pytest.raises(OSError):
            _http(daemon, "GET", "/healthz")


class TestDebugEndpoints:
    def test_status_reports_uptime_and_cache(self, app, bundle_dir):
        status, content_type, body = app.handle("GET", "/debug/status", b"")
        assert status == 200
        assert content_type == "application/json"
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["bundles"] == ["b"]
        assert doc["uptime_s"] >= 0
        assert doc["max_loaded"] == app.cache.capacity
        # The status request itself is in flight while it answers.
        assert doc["in_flight"] == 1
        # Nothing has finished yet on this fresh app, so the ring is empty.
        assert doc["latency"]["window"] == 0
        assert doc["latency"]["p50_s"] is None

    def test_status_sees_warm_handles_and_latencies(self, app):
        post(app, "/analyze", {"bundle": "b"})
        _, _, body = app.handle("GET", "/debug/status", b"")
        doc = json.loads(body)
        assert {"bundle": "b", "lenient": False} in doc["loaded"]
        assert doc["latency"]["window"] >= 1
        assert doc["latency"]["p50_s"] is not None
        assert doc["latency"]["p95_s"] >= doc["latency"]["p50_s"]

    def test_status_reflects_drain(self, app):
        app.begin_drain()
        _, _, body = app.handle("GET", "/debug/status", b"")
        assert json.loads(body)["status"] == "draining"

    def test_profile_returns_collapsed_text(self, app):
        status, content_type, body = app.handle(
            "GET", "/debug/profile", b"", query="seconds=0.001")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "sampling profile:" in body.decode("utf-8")

    def test_profile_rejects_garbage_seconds(self, app):
        status, _, body = app.handle("GET", "/debug/profile", b"",
                                     query="seconds=soon")
        assert status == 400
        assert "seconds" in json.loads(body)["error"]["message"]

    def test_debug_status_over_the_wire(self, live):
        status, body = _http(live, "GET", "/debug/status")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_profile_over_the_wire_names_a_busy_function(self, live):
        """The sampler runs inside the daemon process (in-process here),
        so a busy thread with a distinctive function name must show up
        in the collapsed stacks."""
        stop = threading.Event()

        def _profile_burn():
            while not stop.is_set():
                sum(i * i for i in range(500))

        thread = threading.Thread(target=_profile_burn, daemon=True)
        thread.start()
        try:
            status, body = _http(live, "GET",
                                 "/debug/profile?seconds=0.5")
        finally:
            stop.set()
            thread.join()
        assert status == 200
        assert "_profile_burn" in body.decode("utf-8")
