"""Tests for the columnar Table utility."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.util.tables import Table, render_table


@dataclass
class Row:
    name: str
    value: int


class TestConstruction:
    def test_from_columns(self):
        t = Table({"a": [1, 2, 3], "b": ["x", "y", "z"]})
        assert len(t) == 3
        assert t.fields == ["a", "b"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Table({"a": [1, 2], "b": [1]})

    def test_from_dataclass_rows(self):
        t = Table.from_rows([Row("x", 1), Row("y", 2)])
        assert list(t["name"]) == ["x", "y"]

    def test_from_dict_rows(self):
        t = Table.from_rows([{"a": 1}, {"a": 2}])
        assert list(t["a"]) == [1, 2]

    def test_from_empty_rows_with_fields(self):
        t = Table.from_rows([], fields=["a", "b"])
        assert len(t) == 0
        assert t.fields == ["a", "b"]

    def test_unknown_column_keyerror_lists_available(self):
        t = Table({"a": [1]})
        with pytest.raises(KeyError, match="available"):
            t["nope"]


class TestTransforms:
    @pytest.fixture
    def table(self):
        return Table({"k": ["a", "b", "a", "c"], "v": [3, 1, 2, 4]})

    def test_where_mask(self, table):
        out = table.where(np.asarray([True, False, True, False]))
        assert list(out["v"]) == [3, 2]

    def test_where_predicate(self, table):
        out = table.where(lambda row: row["v"] >= 3)
        assert list(out["k"]) == ["a", "c"]

    def test_where_bad_mask_length(self, table):
        with pytest.raises(ValueError):
            table.where(np.asarray([True]))

    def test_select(self, table):
        assert table.select("v").fields == ["v"]

    def test_with_column(self, table):
        out = table.with_column("w", [0, 0, 0, 0])
        assert "w" in out
        assert "w" not in table  # original untouched

    def test_sort_by(self, table):
        out = table.sort_by("v")
        assert list(out["v"]) == [1, 2, 3, 4]

    def test_sort_by_reverse(self, table):
        out = table.sort_by("v", reverse=True)
        assert list(out["v"]) == [4, 3, 2, 1]

    def test_sort_multi_key_primary_first(self):
        t = Table({"a": [1, 0, 1, 0], "b": [2, 1, 1, 2]})
        out = t.sort_by("a", "b")
        assert list(zip(out["a"], out["b"])) == [(0, 1), (0, 2), (1, 1), (1, 2)]

    def test_group_by_column(self, table):
        groups = table.group_by("k")
        assert set(groups) == {"a", "b", "c"}
        assert list(groups["a"]["v"]) == [3, 2]

    def test_group_by_function(self, table):
        groups = table.group_by(lambda row: row["v"] % 2)
        assert sorted(groups) == [0, 1]

    def test_concat(self, table):
        out = table.concat(table)
        assert len(out) == 8

    def test_concat_field_mismatch(self, table):
        with pytest.raises(ValueError):
            table.concat(Table({"x": [1]}))

    def test_rows_roundtrip(self, table):
        rows = list(table.rows())
        rebuilt = Table.from_rows(rows)
        assert list(rebuilt["v"]) == list(table["v"])


class TestRender:
    def test_render_aligns_columns(self):
        text = render_table(["name", "v"], [["alpha", "1"], ["b", "22"]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_table_render_max_rows(self):
        t = Table({"a": list(range(100))})
        text = t.render(max_rows=5)
        assert len(text.splitlines()) == 7

    def test_float_formatting(self):
        t = Table({"x": [1.23456789]})
        assert "1.235" in t.render()
