"""Tests for the cluster simulator: invariants and targeted fault
semantics using hand-built plans and fault timelines."""

import pytest

from repro.faults.events import FaultEvent, FaultTimeline
from repro.faults.taxonomy import ErrorCategory
from repro.machine.blueprints import MachineBlueprint, build_machine
from repro.machine.nodetypes import NodeType
from repro.sim.cluster import ClusterSimulator, SimConfig
from repro.util.intervals import Interval
from repro.workload.jobs import AppRunPlan, JobPlan, Outcome

WINDOW = Interval(0.0, 30 * 86400.0)


@pytest.fixture
def machine():
    return build_machine(MachineBlueprint(n_xe=32, n_xk=8, n_service=0))


def job(job_id, *, nodes=4, submit=0.0, durations=(3600.0,), walltime=None,
        node_type=NodeType.XE, user_fails_at=None, io=0.0, comm=0.0,
        checkpoint=0.0):
    runs = []
    for i, duration in enumerate(durations):
        fails = user_fails_at is not None and i == user_fails_at
        runs.append(AppRunPlan(app_name="app", natural_duration_s=duration,
                               user_fails=fails, user_failure_frac=0.5,
                               comm_intensity=comm, io_intensity=io,
                               checkpoint_interval_s=checkpoint))
    total = sum(durations)
    return JobPlan(job_id=job_id, user="u", submit_time=submit,
                   node_type=node_type, nodes=nodes,
                   walltime_s=walltime if walltime is not None else total * 2,
                   runs=tuple(runs))


def simulate(machine, plans, events=(), config=None, seed=0):
    sim = ClusterSimulator(machine, config=config or SimConfig(
        launch_failure_prob=0.0), seed=seed)
    return sim.run(plans, FaultTimeline(events=list(events)), WINDOW)


def node_event(machine, node_id, *, time, category=ErrorCategory.KERNEL_PANIC,
               fatal=True, repair=3600.0, event_id=0):
    return FaultEvent(event_id=event_id, time=time, category=category,
                      component=str(machine.node(node_id).name),
                      node_ids=(node_id,), fatal=fatal, detected=True,
                      repair_s=repair if fatal else 0.0)


class TestHappyPath:
    def test_single_run_completes(self, machine):
        result = simulate(machine, [job(1)])
        assert len(result.runs) == 1
        run = result.runs[0]
        assert run.outcome is Outcome.COMPLETED
        assert run.exit_code == 0
        assert run.elapsed_s == pytest.approx(3600.0)
        assert run.nodes == 4

    def test_multi_run_job_sequential(self, machine):
        result = simulate(machine, [job(1, durations=(100.0, 200.0, 300.0))])
        assert len(result.runs) == 3
        for earlier, later in zip(result.runs, result.runs[1:]):
            assert later.start >= earlier.end

    def test_job_record_produced(self, machine):
        result = simulate(machine, [job(1)])
        assert len(result.jobs) == 1
        record = result.jobs[0]
        assert record.exit_status == 0
        assert len(record.apids) == 1

    def test_fcfs_queueing(self, machine):
        # Two 20-node jobs cannot run together on 32 XE nodes.
        plans = [job(1, nodes=20, submit=0.0), job(2, nodes=20, submit=1.0)]
        result = simulate(machine, plans)
        first, second = sorted(result.jobs, key=lambda j: j.job_id)
        assert second.start_time >= first.end_time

    def test_parallel_when_capacity_allows(self, machine):
        plans = [job(1, nodes=8, submit=0.0), job(2, nodes=8, submit=1.0)]
        result = simulate(machine, plans)
        first, second = sorted(result.jobs, key=lambda j: j.job_id)
        assert second.start_time < first.end_time

    def test_allocations_disjoint_while_concurrent(self, machine):
        plans = [job(i, nodes=8, submit=0.0) for i in range(1, 5)]
        result = simulate(machine, plans)
        for record in result.jobs:
            for other in result.jobs:
                if other.job_id == record.job_id:
                    continue
                overlap_time = not (record.end_time <= other.start_time
                                    or other.end_time <= record.start_time)
                if overlap_time:
                    assert not (set(record.node_ids) & set(other.node_ids))


class TestUserOutcomes:
    def test_user_failure(self, machine):
        result = simulate(machine, [job(1, user_fails_at=0)])
        run = result.runs[0]
        assert run.outcome is Outcome.USER_FAILURE
        assert run.exit_code != 0
        assert run.elapsed_s == pytest.approx(1800.0)  # fails halfway

    def test_walltime_kill(self, machine):
        result = simulate(machine, [job(1, durations=(7200.0,),
                                        walltime=3600.0)])
        run = result.runs[0]
        assert run.outcome is Outcome.WALLTIME
        assert run.elapsed_s == pytest.approx(3600.0)
        assert run.exit_code == 271

    def test_walltime_kills_later_runs_of_job(self, machine):
        result = simulate(machine, [job(1, durations=(1000.0, 7200.0),
                                        walltime=2000.0)])
        assert [r.outcome for r in result.runs] == \
            [Outcome.COMPLETED, Outcome.WALLTIME]

    def test_launch_failures_occur_at_configured_rate(self, machine):
        plans = [job(i, nodes=1, durations=(60.0,)) for i in range(1, 301)]
        sim = ClusterSimulator(machine,
                               config=SimConfig(launch_failure_prob=0.2),
                               seed=3)
        result = sim.run(plans, FaultTimeline(events=[]), WINDOW)
        launch_failed = [r for r in result.runs
                         if r.outcome is Outcome.LAUNCH_FAILURE]
        frac = len(launch_failed) / len(result.runs)
        assert 0.1 < frac < 0.3
        for run in launch_failed:
            assert run.cause_category is ErrorCategory.ALPS_SOFTWARE
            assert run.elapsed_s == 0.0


class TestFaultSemantics:
    def test_node_fault_kills_resident_run(self, machine):
        event = node_event(machine, node_id=0, time=1000.0)
        result = simulate(machine, [job(1, nodes=4)], [event])
        run = result.runs[0]
        assert run.outcome is Outcome.SYSTEM_FAILURE
        assert run.cause_event_id == 0
        assert run.cause_category is ErrorCategory.KERNEL_PANIC
        assert run.end == pytest.approx(1000.0)

    def test_node_fault_elsewhere_harmless(self, machine):
        event = node_event(machine, node_id=31, time=1000.0)
        result = simulate(machine, [job(1, nodes=4)], [event])
        assert result.runs[0].outcome is Outcome.COMPLETED

    def test_nonfatal_event_harmless(self, machine):
        event = node_event(machine, node_id=0, time=1000.0, fatal=False)
        result = simulate(machine, [job(1, nodes=4)], [event])
        assert result.runs[0].outcome is Outcome.COMPLETED

    def test_system_kill_aborts_rest_of_job(self, machine):
        event = node_event(machine, node_id=0, time=1000.0)
        result = simulate(machine, [job(1, durations=(3600.0, 3600.0))],
                          [event])
        assert len(result.runs) == 1  # second run never launched

    def test_killed_node_unavailable_until_repair(self, machine):
        # Job A dies at t=1000 (node 0 down for 10000 s). Job B needs all
        # 32 nodes, so it can only start after the repair.
        event = node_event(machine, node_id=0, time=1000.0, repair=10000.0)
        plans = [job(1, nodes=32, submit=0.0, durations=(3600.0,)),
                 job(2, nodes=32, submit=10.0, durations=(60.0,))]
        result = simulate(machine, plans, [event])
        second = [j for j in result.jobs if j.job_id == 2][0]
        assert second.start_time >= 11000.0

    def test_swo_kills_everything(self, machine):
        swo = FaultEvent(event_id=9, time=500.0, category=ErrorCategory.SWO,
                         component="system", fatal=True, detected=True,
                         repair_s=7200.0)
        plans = [job(1, nodes=8), job(2, nodes=8, submit=1.0)]
        result = simulate(machine, plans, [swo])
        for run in result.runs:
            assert run.outcome is Outcome.SYSTEM_FAILURE
            assert run.cause_category is ErrorCategory.SWO

    def test_no_starts_during_swo_downtime(self, machine):
        swo = FaultEvent(event_id=9, time=500.0, category=ErrorCategory.SWO,
                         component="system", fatal=True, detected=True,
                         repair_s=7200.0)
        plans = [job(1, nodes=8), job(2, nodes=8, submit=600.0)]
        result = simulate(machine, plans, [swo])
        second = [j for j in result.jobs if j.job_id == 2][0]
        assert second.start_time >= 500.0 + 7200.0

    def test_filesystem_fault_gated_by_io_intensity(self, machine):
        fs = FaultEvent(event_id=1, time=1000.0,
                        category=ErrorCategory.LUSTRE_MDS, component="mds00",
                        fatal=True, detected=True)
        heavy = simulate(machine, [job(1, io=1.0)], [fs])
        light = simulate(machine, [job(1, io=0.0)], [fs])
        assert heavy.runs[0].outcome is Outcome.SYSTEM_FAILURE
        assert light.runs[0].outcome is Outcome.COMPLETED

    def test_fabric_fault_inside_footprint_kills(self, machine):
        plans = [job(1, nodes=32, comm=1.0)]
        # Epicenter on the first node's Gemini: inside the footprint.
        vertex = machine.node(0).gemini_vertex
        fabric = FaultEvent(event_id=2, time=1000.0,
                            category=ErrorCategory.GEMINI_LINK,
                            component="c0-0c0s0g0", fabric_vertex=vertex,
                            fatal=True, detected=True)
        result = simulate(machine, plans, [fabric])
        assert result.runs[0].outcome is Outcome.SYSTEM_FAILURE

    def test_fabric_fault_zero_comm_spares(self, machine):
        vertex = machine.node(0).gemini_vertex
        fabric = FaultEvent(event_id=2, time=1000.0,
                            category=ErrorCategory.GEMINI_LINK,
                            component="c0-0c0s0g0", fabric_vertex=vertex,
                            fatal=True, detected=True)
        result = simulate(machine, [job(1, nodes=32, comm=0.0)], [fabric])
        assert result.runs[0].outcome is Outcome.COMPLETED

    def test_checkpoint_preserves_work(self, machine):
        event = node_event(machine, node_id=0, time=7000.0)
        result = simulate(machine, [job(1, durations=(8000.0,),
                                        checkpoint=3600.0)], [event])
        run = result.runs[0]
        assert run.outcome is Outcome.SYSTEM_FAILURE
        assert run.checkpointed_s == pytest.approx(3600.0)
        # Lost work = elapsed - checkpointed.
        assert run.lost_node_hours == pytest.approx((7000 - 3600) / 3600 * 4)

    def test_fault_between_runs_takes_node_down(self, machine):
        # Fault strikes in the 30 s gap between two runs of a job: the
        # job is torn down without a second run record.
        event = node_event(machine, node_id=0, time=3610.0)
        result = simulate(machine, [job(1, durations=(3600.0, 3600.0))],
                          [event])
        outcomes = [r.outcome for r in result.runs]
        assert outcomes[0] is Outcome.COMPLETED
        assert len(result.runs) <= 2


class TestResultInvariants:
    def test_runs_sorted(self, machine):
        plans = [job(i, nodes=2, submit=float(i)) for i in range(1, 10)]
        result = simulate(machine, plans)
        starts = [r.start for r in result.runs]
        assert starts == sorted(starts)

    def test_apids_unique(self, machine):
        plans = [job(i, nodes=2, durations=(60.0, 60.0)) for i in range(1, 10)]
        result = simulate(machine, plans)
        apids = [r.apid for r in result.runs]
        assert len(set(apids)) == len(apids)

    def test_summary_counts(self, machine):
        result = simulate(machine, [job(1), job(2, submit=1.0)])
        summary = result.summary()
        assert summary["runs"] == 2
        assert summary["jobs"] == 2

    def test_submit_before_window_rejected(self, machine):
        from repro.errors import SimulationError
        sim = ClusterSimulator(machine, seed=0)
        bad = job(1, submit=-5.0)
        with pytest.raises(SimulationError):
            sim.run([bad], FaultTimeline(events=[]), WINDOW)
