"""Smoke tests: the example scripts run end-to-end (in-process)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        module = load("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "outcome categorization" in out
        assert "system-failure share" in out

    def test_capability_campaign_quick(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["capability_campaign.py", "--quick"])
        module = load("capability_campaign")
        module.main()
        out = capsys.readouterr().out
        assert "XE capability campaign" in out
        assert "XK capability campaign" in out

    def test_optimal_checkpoint_helper(self):
        module = load("capability_campaign")
        # sqrt(2 * 300 * 36000) = 4648s
        assert module.optimal_checkpoint_interval_s(36000.0) == \
            pytest.approx(4648.0, rel=0.01)
