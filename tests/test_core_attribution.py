"""Tests for error-run attribution and outcome categorization."""

import pytest

from repro.core.attribution import SpatialIndex, attribute_clusters
from repro.core.categorize import DiagnosedOutcome, categorize_runs
from repro.core.config import LogDiverConfig
from repro.core.filtering import ErrorCluster
from repro.core.ingest import RunView
from repro.faults.taxonomy import ErrorCategory
from repro.logs.bundle import LogBundle
from repro.util.timeutil import Epoch

#: Two blades of XE nodes plus one XK node, vertices 0..2.
NODEMAP = {
    0: ("c0-0c0s0n0", "XE", 0), 1: ("c0-0c0s0n1", "XE", 0),
    2: ("c0-0c0s0n2", "XE", 1), 3: ("c0-0c0s0n3", "XE", 1),
    4: ("c0-0c0s1n0", "XE", 2), 5: ("c0-0c0s1n1", "XE", 2),
    6: ("c0-0c0s1n2", "XK", 3), 7: ("c0-0c0s1n3", "XK", 3),
}

MANIFEST = {"torus_dims": [2, 2, 1], "torus_vertices": 4,
            "window_s": [0.0, 100000.0]}

CONFIG = LogDiverConfig()


def make_bundle():
    return LogBundle(directory=None, epoch=Epoch(), manifest=MANIFEST,
                     nodemap=dict(NODEMAP))


def run(apid, nids, start, end, *, exit_code=0, exit_signal=0,
        launch_error=False):
    vertices = tuple(sorted({NODEMAP[n][2] for n in nids if n in NODEMAP}))
    types = [NODEMAP[n][1] for n in nids if n in NODEMAP]
    majority = max(set(types), key=types.count) if types else "?"
    return RunView(apid=apid, batch_id="1.bw", user="u", cmd="app",
                   nids=tuple(nids), start_s=start, end_s=end,
                   exit_code=exit_code, exit_signal=exit_signal,
                   launch_error=launch_error, node_type=majority,
                   gemini_vertices=vertices)


def cluster(cluster_id, category, components, start, end):
    return ErrorCluster(cluster_id=cluster_id, category=category,
                        start_s=start, end_s=end,
                        components=tuple(components), record_count=1)


class TestSpatialIndex:
    def test_node_resolution(self):
        index = SpatialIndex(make_bundle())
        assert index.component_nids("c0-0c0s0n0") == (0,)

    def test_accelerator_maps_to_node(self):
        index = SpatialIndex(make_bundle())
        assert index.component_nids("c0-0c0s1n2a0") == (6,)

    def test_blade_resolution(self):
        index = SpatialIndex(make_bundle())
        assert sorted(index.component_nids("c0-0c0s0")) == [0, 1, 2, 3]

    def test_cabinet_prefix_no_false_match(self):
        nodemap = dict(NODEMAP)
        nodemap[8] = ("c0-01c0s0n0", "XE", 3)  # cabinet col 0, row 1? no: c0-01
        bundle = LogBundle(directory=None, epoch=Epoch(), manifest=MANIFEST,
                           nodemap=nodemap)
        index = SpatialIndex(bundle)
        # Cabinet c0-0 must not match node in cabinet c0-01.
        assert 8 not in index.component_nids("c0-0")

    def test_gemini_vertex(self):
        index = SpatialIndex(make_bundle())
        assert index.component_vertex("c0-0c0s0g0") == 0
        assert index.component_vertex("c0-0c0s0g1") == 1

    def test_unknown_component_empty(self):
        index = SpatialIndex(make_bundle())
        assert index.component_nids("oss0001") == ()
        assert index.component_vertex("garbage") is None

    def test_no_nodemap_rejected(self):
        from repro.errors import AnalysisError

        empty = LogBundle(directory=None, epoch=Epoch(), manifest=MANIFEST)
        with pytest.raises(AnalysisError):
            SpatialIndex(empty)


class TestPrefixIndexEquivalence:
    """The prefix buckets must reproduce the delimited linear scan."""

    @staticmethod
    def naive_nids(bundle, component):
        """The historical O(nodemap) reference implementation."""
        from repro.errors import CNameError
        from repro.machine.cname import ComponentKind, parse_cname

        try:
            cname = parse_cname(component)
        except CNameError:
            return ()
        kind = cname.kind
        if kind is ComponentKind.ACCELERATOR:
            cname, kind = cname.node_name, ComponentKind.NODE
        if kind is ComponentKind.NODE:
            for nid, (text, _t, _v) in bundle.nodemap.items():
                if text == str(cname):
                    return (nid,)
            return ()
        delimiter = {ComponentKind.CABINET: "c", ComponentKind.CHASSIS: "s",
                     ComponentKind.BLADE: "n"}.get(kind)
        if delimiter is None:
            return ()
        prefix = str(cname) + delimiter
        return tuple(nid for nid, (text, _t, _v) in bundle.nodemap.items()
                     if text.startswith(prefix))

    def test_matches_naive_scan_on_real_nodemap(self, bundle):
        from repro.machine.cname import parse_cname

        index = SpatialIndex(bundle)
        components = set()
        for text, _node_type, _vertex in list(bundle.nodemap.values())[:80]:
            cname = parse_cname(text)
            components.update({
                text, f"{text}a0", str(cname.blade), f"{cname.blade}g1",
                str(cname.chassis_name), str(cname.cabinet)})
        components.update({"oss0001", "c999-9c0s0n0", "c999-9"})
        assert len(components) > 20
        for component in sorted(components):
            assert (index.component_nids(component)
                    == self.naive_nids(bundle, component)), component

    def test_lookups_are_memoized(self):
        index = SpatialIndex(make_bundle())
        first = index.component_nids("c0-0c0s0")
        assert index.component_nids("c0-0c0s0") is first


class TestAttribution:
    def test_node_error_attributed_to_resident_failed_run(self):
        runs = [run(1, (0, 1), 0.0, 1000.0, exit_signal=9)]
        clusters = [cluster(0, ErrorCategory.MCE, ["c0-0c0s0n0"],
                            990.0, 995.0)]
        out = attribute_clusters(runs, clusters, make_bundle(), CONFIG)
        assert 1 in out
        assert out[1][0].category is ErrorCategory.MCE

    def test_node_error_elsewhere_not_attributed(self):
        runs = [run(1, (4, 5), 0.0, 1000.0, exit_signal=9)]
        clusters = [cluster(0, ErrorCategory.MCE, ["c0-0c0s0n0"],
                            990.0, 995.0)]
        assert attribute_clusters(runs, clusters, make_bundle(), CONFIG) == {}

    def test_error_after_run_end_not_attributed(self):
        runs = [run(1, (0, 1), 0.0, 1000.0, exit_signal=9)]
        clusters = [cluster(0, ErrorCategory.MCE, ["c0-0c0s0n0"],
                            2000.0, 2005.0)]
        assert attribute_clusters(runs, clusters, make_bundle(), CONFIG) == {}

    def test_error_slightly_before_run_end_attributed(self):
        # Error at t=995 can explain a run that died at t=1000 even if
        # its log record window closed first.
        runs = [run(1, (0, 1), 0.0, 1000.0, exit_signal=9)]
        clusters = [cluster(0, ErrorCategory.NODE_HEARTBEAT, ["c0-0c0s0n0"],
                            900.0, 905.0)]
        out = attribute_clusters(runs, clusters, make_bundle(), CONFIG)
        assert 1 in out

    def test_successful_runs_skipped_by_default(self):
        runs = [run(1, (0, 1), 0.0, 1000.0)]  # exit 0
        clusters = [cluster(0, ErrorCategory.MCE, ["c0-0c0s0n0"],
                            500.0, 505.0)]
        assert attribute_clusters(runs, clusters, make_bundle(), CONFIG) == {}

    def test_filesystem_error_is_global(self):
        runs = [run(1, (4, 5), 0.0, 1000.0, exit_signal=9)]
        clusters = [cluster(0, ErrorCategory.LUSTRE_MDS, ["mds00"],
                            500.0, 505.0)]
        out = attribute_clusters(runs, clusters, make_bundle(), CONFIG)
        assert 1 in out

    def test_fabric_error_requires_footprint(self):
        # Run on vertices {0,1}; torus 2x2x1. Epicenter vertex 0: inside.
        runs = [run(1, (0, 1, 2, 3), 0.0, 1000.0, exit_signal=9)]
        clusters = [cluster(0, ErrorCategory.GEMINI_LINK, ["c0-0c0s0g0"],
                            500.0, 505.0)]
        out = attribute_clusters(runs, clusters, make_bundle(), CONFIG)
        assert 1 in out

    def test_benign_categories_never_explain(self):
        runs = [run(1, (0, 1), 0.0, 1000.0, exit_signal=9)]
        clusters = [cluster(0, ErrorCategory.DRAM_CORRECTABLE,
                            ["c0-0c0s0n0"], 500.0, 505.0)]
        assert attribute_clusters(runs, clusters, make_bundle(), CONFIG) == {}

    def test_most_local_scope_wins(self):
        runs = [run(1, (0, 1), 0.0, 1000.0, exit_signal=9)]
        clusters = [
            cluster(0, ErrorCategory.LUSTRE_MDS, ["mds00"], 500.0, 505.0),
            cluster(1, ErrorCategory.MCE, ["c0-0c0s0n0"], 500.0, 505.0),
        ]
        out = attribute_clusters(runs, clusters, make_bundle(), CONFIG)
        assert out[1][0].category is ErrorCategory.MCE


class TestCategorize:
    def diagnose(self, the_run, clusters=()):
        attributions = attribute_clusters([the_run], list(clusters),
                                          make_bundle(), CONFIG)
        return categorize_runs([the_run], attributions, CONFIG)[0]

    def test_success(self):
        assert self.diagnose(run(1, (0,), 0, 100)).outcome is \
            DiagnosedOutcome.SUCCESS

    def test_walltime(self):
        d = self.diagnose(run(1, (0,), 0, 100, exit_code=271))
        assert d.outcome is DiagnosedOutcome.WALLTIME

    def test_launch_error(self):
        d = self.diagnose(run(1, (0,), 0, 0, exit_code=1, launch_error=True))
        assert d.outcome is DiagnosedOutcome.SYSTEM
        assert d.category is ErrorCategory.ALPS_SOFTWARE

    def test_plain_nonzero_exit_is_user(self):
        d = self.diagnose(run(1, (0,), 0, 100, exit_code=1))
        assert d.outcome is DiagnosedOutcome.USER

    def test_segfault_is_user(self):
        d = self.diagnose(run(1, (0,), 0, 100, exit_signal=11))
        assert d.outcome is DiagnosedOutcome.USER

    def test_sigkill_without_explanation_is_unknown(self):
        d = self.diagnose(run(1, (0,), 0, 100, exit_signal=9))
        assert d.outcome is DiagnosedOutcome.UNKNOWN

    def test_sigkill_with_explanation_is_system(self):
        the_run = run(1, (0, 1), 0.0, 1000.0, exit_signal=9)
        clusters = [cluster(0, ErrorCategory.MCE, ["c0-0c0s0n0"], 990.0, 995.0)]
        d = self.diagnose(the_run, clusters)
        assert d.outcome is DiagnosedOutcome.SYSTEM
        assert d.category is ErrorCategory.MCE
        assert d.cluster_id == 0
