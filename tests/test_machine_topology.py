"""Tests for the Gemini torus topology."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.machine.topology import TorusTopology, dims_for


class TestDimsFor:
    def test_blue_waters_cube(self):
        assert dims_for(13824) == (24, 24, 24)

    def test_capacity_always_sufficient(self):
        for count in (1, 2, 7, 100, 1000, 13688):
            x, y, z = dims_for(count)
            assert x * y * z >= count

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            dims_for(0)

    @given(st.integers(1, 30000))
    def test_near_cubic(self, count):
        x, y, z = dims_for(count)
        assert x * y * z >= count
        # Not absurdly elongated.
        assert max(x, y, z) <= 4 * max(1, round(count ** (1 / 3))) + 4


class TestTopology:
    @pytest.fixture
    def torus(self):
        return TorusTopology(dims=(4, 4, 4), n_vertices=60)

    def test_coords_shape(self, torus):
        assert torus.coords.shape == (60, 3)

    def test_coord_of_origin(self, torus):
        assert torus.coord_of(0) == (0, 0, 0)

    def test_coord_of_out_of_range(self, torus):
        with pytest.raises(IndexError):
            torus.coord_of(60)

    def test_overfull_rejected(self):
        with pytest.raises(ConfigurationError):
            TorusTopology(dims=(2, 2, 2), n_vertices=9)

    def test_distance_self_zero(self, torus):
        assert torus.distance(5, 5) == 0

    def test_distance_symmetric(self, torus):
        assert torus.distance(3, 17) == torus.distance(17, 3)

    def test_distance_wraps(self):
        torus = TorusTopology(dims=(4, 1, 1), n_vertices=4)
        # 0 and 3 are adjacent around the ring.
        assert torus.distance(0, 3) == 1

    def test_neighbors_adjacent(self, torus):
        for neighbor in torus.neighbors(10):
            assert torus.distance(10, neighbor) == 1

    def test_neighbors_count_at_most_six(self, torus):
        assert len(torus.neighbors(0)) <= 6

    def test_link_graph_connected(self):
        torus = TorusTopology(dims=(3, 3, 3), n_vertices=27)
        import networkx as nx

        assert nx.is_connected(torus.link_graph())


class TestBoundingArcs:
    @pytest.fixture
    def torus(self):
        return TorusTopology(dims=(6, 6, 6), n_vertices=216)

    def test_empty_set(self, torus):
        assert torus.bounding_extent([]) == (0, 0, 0)

    def test_single_vertex(self, torus):
        assert torus.bounding_extent([0]) == (1, 1, 1)

    def test_compact_block(self, torus):
        # Vertices 0..5 occupy x=0..5 at y=z=0.
        assert torus.bounding_extent(list(range(6))) == (6, 1, 1)

    def test_wraparound_not_overcharged(self, torus):
        # x = 0 and x = 5 are adjacent on the ring: extent 2, not 6.
        a = 0                      # (0,0,0)
        b = 5                      # (5,0,0)
        assert torus.bounding_extent([a, b])[0] == 2

    def test_arc_contains_members(self, torus):
        vertices = [0, 1, 7, 43]
        arcs = torus.bounding_arcs(vertices)
        for v in vertices:
            assert torus.arc_contains(arcs, v)

    def test_footprint_volume_monotone(self, torus):
        small = torus.footprint_volume([0, 1])
        large = torus.footprint_volume([0, 1, 100, 200])
        assert small <= large

    def test_fabric_exposure_bounds(self, torus):
        assert 0.0 < torus.fabric_exposure([0]) <= 1.0
        assert torus.fabric_exposure(list(range(216))) == 1.0

    @given(st.lists(st.integers(0, 215), min_size=1, max_size=30))
    def test_all_members_inside_arcs(self, vertices):
        torus = TorusTopology(dims=(6, 6, 6), n_vertices=216)
        arcs = torus.bounding_arcs(vertices)
        for v in vertices:
            assert torus.arc_contains(arcs, v)

    @given(st.lists(st.integers(0, 215), min_size=1, max_size=20))
    def test_extent_at_most_dims(self, vertices):
        torus = TorusTopology(dims=(6, 6, 6), n_vertices=216)
        extent = torus.bounding_extent(vertices)
        assert all(1 <= e <= 6 for e in extent)

    @given(st.lists(st.integers(0, 215), min_size=1, max_size=20))
    def test_volume_at_least_vertex_count(self, vertices):
        torus = TorusTopology(dims=(6, 6, 6), n_vertices=216)
        unique = len(set(vertices))
        assert torus.footprint_volume(vertices) >= unique
