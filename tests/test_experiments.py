"""Tests for the experiments layer: targets, comparisons, sweeps,
accuracy, detection gap, SWO impact."""

import pytest

from repro.experiments.accuracy import diagnosis_accuracy
from repro.experiments.comparison import Comparison, render_comparisons
from repro.experiments.detection import ground_truth_gap, pipeline_gap
from repro.experiments.sweep import scaling_sweep
from repro.experiments.swo_impact import swo_impact
from repro.experiments.targets import PAPER_TARGETS, target
from repro.faults.taxonomy import ErrorCategory
from repro.machine.nodetypes import NodeType


class TestTargets:
    def test_headline_targets_present(self):
        assert target("system_failure_share").value == 0.0153
        assert target("xe_p_at_22k").value == 0.162
        assert target("xk_p_at_4224").value == 0.129

    def test_within_tolerance(self):
        t = target("system_failure_share")
        assert t.within(0.0153)
        assert t.within(0.012)
        assert not t.within(0.06)

    def test_unique_keys(self):
        keys = [t.key for t in PAPER_TARGETS]
        assert len(keys) == len(set(keys))

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            target("nope")


class TestComparison:
    def test_ratio(self):
        c = Comparison("T4", "x", paper_value=0.02, measured=0.01)
        assert c.ratio == pytest.approx(0.5)

    def test_ratio_without_paper_value(self):
        c = Comparison("T4", "x", paper_value=None, measured=0.01)
        assert c.ratio != c.ratio  # NaN

    def test_against_builder(self):
        c = Comparison.against("T4", target("system_failure_share"), 0.014)
        assert c.paper_value == 0.0153

    def test_render(self):
        text = render_comparisons([
            Comparison("T4", "share", 0.0153, 0.014, "note")])
        assert "T4" in text and "0.0153" in text


class TestScalingSweepSmall:
    def test_sweep_shape(self):
        points = scaling_sweep(NodeType.XK, scales=(500, 4224),
                               runs_per_scale=40, seed=2)
        assert [p.nodes for p in points] == [500, 4224]
        for p in points:
            assert p.runs == 40
            assert 0.0 <= p.ci_low <= p.probability <= p.ci_high <= 1.0

    def test_sweep_grows_with_scale(self):
        points = scaling_sweep(NodeType.XK, scales=(500, 4224),
                               runs_per_scale=60, seed=3)
        assert points[-1].probability > points[0].probability

    def test_sweep_deterministic(self):
        a = scaling_sweep(NodeType.XK, scales=(2000,), runs_per_scale=30,
                          seed=5)
        b = scaling_sweep(NodeType.XK, scales=(2000,), runs_per_scale=30,
                          seed=5)
        assert a == b


class TestAccuracy:
    def test_accuracy_report(self, sim_result, analysis):
        report = diagnosis_accuracy(sim_result, analysis=analysis)
        assert report.runs == len(sim_result.runs)
        assert 0.0 <= report.system_precision <= 1.0
        assert 0.0 <= report.system_recall <= 1.0
        # Success diagnoses must be near-perfect.
        assert report.rate("completed", "success") > 0.99

    def test_confusion_counts_total(self, sim_result, analysis):
        report = diagnosis_accuracy(sim_result, analysis=analysis)
        assert sum(report.confusion.values()) == len(sim_result.runs)

    def test_system_recall_high(self, sim_result, analysis):
        report = diagnosis_accuracy(sim_result, analysis=analysis)
        assert report.system_recall >= 0.9


class TestDetectionGap:
    def test_ground_truth_gap_counts(self, sim_result):
        gap = ground_truth_gap(sim_result)
        assert gap.xe_silent <= gap.xe_kills
        assert gap.xk_silent <= gap.xk_kills

    def test_pipeline_gap_counts(self, sim_result, analysis):
        # Reuse the session analysis via a fresh bundle is expensive;
        # the pipeline gap writes its own temp bundle.
        gap = pipeline_gap(sim_result, seed=1)
        assert gap.xe_silent <= gap.xe_kills
        assert gap.xk_silent <= gap.xk_kills


class TestSwoImpact:
    def test_summary_consistent(self, sim_result):
        summary = swo_impact(sim_result)
        swo_runs = sum(1 for r in sim_result.runs
                       if r.cause_category is ErrorCategory.SWO)
        assert summary.runs_killed == swo_runs
        assert 0.0 < summary.availability <= 1.0

    def test_per_outage_kill_counts(self, sim_result):
        summary = swo_impact(sim_result)
        for outage in summary.outages:
            assert outage.runs_killed >= 0
            assert outage.downtime_h >= 0
