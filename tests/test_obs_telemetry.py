"""End-to-end telemetry tests: determinism, parallel parity, CLI.

The two properties the subsystem exists to provide:

* **determinism** -- two runs of the same scenario emit identical span
  event sequences once the measurement fields are stripped;
* **parallel parity** -- a ``--jobs 2`` campaign produces one merged
  trace whose span skeleton and metric totals equal the serial run's
  (the PR's acceptance criterion).
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.engine import run_campaign
from repro.cli import main
from repro.core.pipeline import LogDiver
from repro.logs.bundle import read_bundle, write_bundle
from repro.obs import (
    MetricsRegistry,
    Tracer,
    normalized_events,
    scoped_registry,
    tracing,
)
from repro.sim.scenario import small_scenario

DAYS = 10.0
SEED = 11


def _traced_analysis() -> tuple[Tracer, MetricsRegistry, dict]:
    """One full pass (simulate -> bundle -> ingest -> analyze), traced."""
    import tempfile

    tracer = Tracer()
    with tracing(tracer), scoped_registry() as registry:
        result = small_scenario(days=DAYS, seed=SEED).run()
        with tempfile.TemporaryDirectory() as tmp:
            write_bundle(result, tmp, seed=SEED)
            bundle = read_bundle(tmp, strict=False)
        analysis = LogDiver().analyze(bundle)
    return tracer, registry, analysis.summary()


class TestDeterminism:
    def test_identical_runs_emit_identical_event_skeletons(self):
        tracer_a, registry_a, summary_a = _traced_analysis()
        tracer_b, registry_b, summary_b = _traced_analysis()
        assert normalized_events(tracer_a.events()) == \
            normalized_events(tracer_b.events())
        assert registry_a.snapshot() == registry_b.snapshot()
        # JSON text compare: NaN-valued metrics (empty scaling curves on
        # tiny scenarios) must still count as equal.
        assert json.dumps(summary_a, sort_keys=True) == \
            json.dumps(summary_b, sort_keys=True)

    def test_pipeline_spans_cover_every_layer(self):
        tracer, registry, _ = _traced_analysis()
        names = {e["name"] for e in tracer.events()}
        assert {"simulate", "build_machine", "inject_faults",
                "generate_workload", "des", "write_bundle", "read_bundle",
                "analyze", "classify", "filter", "assemble", "attribute",
                "categorize", "metrics"} <= names
        counters = registry.snapshot()["counters"]
        assert counters["sim_scenarios_total"] == 1
        assert counters["logdiver_analyses_total"] == 1
        assert any(k.startswith("logdiver_runs_classified_total")
                   for k in counters)
        assert any(k.startswith("ingest_records_parsed_total")
                   for k in counters)


def _campaign_unit(*, days: float, seed: int) -> dict:
    """Module-level so the spawn pool can pickle it."""
    import tempfile

    result = small_scenario(days=days, seed=seed).run()
    with tempfile.TemporaryDirectory() as tmp:
        write_bundle(result, tmp, seed=seed)
        bundle = read_bundle(tmp, strict=False)
    return LogDiver().analyze(bundle).summary()


def _run_units(jobs: int) -> tuple[list, Tracer, MetricsRegistry]:
    units = [dict(days=3.0, seed=21 + i) for i in range(3)]
    tracer = Tracer()
    with tracing(tracer), scoped_registry() as registry:
        results = run_campaign(_campaign_unit, units, jobs=jobs)
    return results, tracer, registry


class TestParallelParity:
    """The acceptance criterion: serial and --jobs 2 match exactly."""

    @pytest.fixture(scope="class")
    def serial_and_parallel(self):
        return _run_units(jobs=1), _run_units(jobs=2)

    def test_results_identical(self, serial_and_parallel):
        (serial, _, _), (parallel, _, _) = serial_and_parallel
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)

    def test_span_skeletons_identical(self, serial_and_parallel):
        (_, serial_tracer, _), (_, parallel_tracer, _) = serial_and_parallel
        assert normalized_events(serial_tracer.events()) == \
            normalized_events(parallel_tracer.events())

    def test_metric_totals_identical(self, serial_and_parallel):
        (_, _, serial_reg), (_, _, parallel_reg) = serial_and_parallel
        serial_snap = serial_reg.snapshot()
        parallel_snap = parallel_reg.snapshot()
        assert serial_snap["counters"] == parallel_snap["counters"]
        assert serial_snap["histograms"] == parallel_snap["histograms"]

    def test_worker_spans_attached_under_campaign(self, serial_and_parallel):
        _, (_, parallel_tracer, _) = serial_and_parallel
        (campaign,) = parallel_tracer.roots
        assert campaign.name == "campaign"
        assert [c.name for c in campaign.children] == ["unit"] * 3
        assert [c.attrs["index"] for c in campaign.children] == [0, 1, 2]
        for unit in campaign.children:
            assert unit.children, "worker unit spans must carry children"


class TestTraceCli:
    def test_trace_prints_span_tree_and_writes_telemetry(self, tmp_path,
                                                         capsys):
        telemetry = tmp_path / "telemetry"
        code = main(["trace", "small", "--days", "2",
                     "--telemetry", str(telemetry)])
        out = capsys.readouterr().out
        assert code == 0
        assert "simulate" in out and "analyze" in out
        assert "hot stages" in out
        assert "system-failure share" in out

        lines = (telemetry / "trace.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[0]["event"] == "meta"
        assert events[0]["schema"] == "repro-telemetry/1"
        assert events[-1]["event"] == "metrics"
        span_events = [e for e in events if e["event"] == "span"]
        assert {e["name"] for e in span_events} >= {"campaign", "unit",
                                                    "simulate", "analyze"}
        for event in span_events:
            assert {"seq", "parent", "depth", "name", "attrs", "t_start_s",
                    "duration_s", "rss_peak_kb"} <= set(event)

        prom = (telemetry / "metrics.prom").read_text()
        assert "# TYPE" in prom
        assert "sim_scenarios_total 1" in prom

        metrics = json.loads((telemetry / "metrics.json").read_text())
        assert metrics["schema"] == "repro-metrics/1"
        assert metrics["counters"]["campaign_units_total"] == 1

    def test_analyze_telemetry_flag(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(["simulate", str(bundle), "--small", "--days", "5",
                     "--seed", "3"]) == 0
        capsys.readouterr()
        telemetry = tmp_path / "telemetry"
        code = main(["analyze", str(bundle), "--tables", "outcomes",
                     "--telemetry", str(telemetry)])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry: wrote" in out
        events = [json.loads(line) for line in
                  (telemetry / "trace.jsonl").read_text().splitlines()]
        names = {e.get("name") for e in events}
        assert {"read_bundle", "analyze", "classify"} <= names
