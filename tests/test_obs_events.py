"""Correlated event logging: schema, contexts, propagation plumbing.

The in-process half of the observability-v2 contract: every line is
schema-complete, contexts nest and inherit trace ids, the env round-trip
that lights up spawn workers works, and the reader survives torn tails.
The cross-process half (real spawn workers, the serve daemon) lives in
``test_trace_continuity.py``.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs import events as events_mod
from repro.obs.events import (
    LOG_ENV,
    MEASUREMENT_EVENT_KEYS,
    TRACE_ENV,
    configure_event_log,
    current_trace_id,
    emit,
    event_context,
    get_event_logger,
    new_trace_id,
    normalized_event,
    read_events,
)


@pytest.fixture(autouse=True)
def _clean_logger():
    """Every test starts and ends with no logger and no ambient trace."""
    configure_event_log(None)
    events_mod._env_checked = False
    os.environ.pop(TRACE_ENV, None)
    yield
    configure_event_log(None)
    events_mod._env_checked = False
    os.environ.pop(TRACE_ENV, None)


class TestTraceIds:
    def test_material_is_deterministic(self):
        assert new_trace_id(material="campaign/x/0") \
            == new_trace_id(material="campaign/x/0")
        assert new_trace_id(material="campaign/x/0") \
            != new_trace_id(material="campaign/x/1")

    def test_random_ids_are_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64

    def test_shape(self):
        for trace_id in (new_trace_id(), new_trace_id(material="m")):
            assert len(trace_id) == 16
            int(trace_id, 16)  # hex


class TestEmit:
    def test_record_carries_the_schema_fields(self, tmp_path):
        log = tmp_path / "events.jsonl"
        configure_event_log(log)
        with event_context("unit", trace_id="feedfacefeedface", unit=3):
            emit("unit_start", level="debug", extra="x")
        (record,) = read_events(log)
        assert record["event"] == "unit_start"
        assert record["level"] == "debug"
        assert record["trace_id"] == "feedfacefeedface"
        assert record["pid"] == os.getpid()
        assert record["unit"] == 3
        assert record["extra"] == "x"
        assert isinstance(record["ts"], float)
        assert len(record["span_id"]) == 12

    def test_lines_are_canonical_json(self, tmp_path):
        log = tmp_path / "events.jsonl"
        configure_event_log(log)
        emit("solo")
        line = log.read_text().strip()
        record = json.loads(line)
        assert line == json.dumps(record, sort_keys=True,
                                  separators=(",", ":"))

    def test_emit_without_logger_is_a_noop(self, tmp_path):
        emit("nothing", unit=1)  # must not raise
        assert get_event_logger() is None

    def test_emit_outside_context_uses_ambient_trace(self, tmp_path):
        log = tmp_path / "events.jsonl"
        configure_event_log(log)
        os.environ[TRACE_ENV] = "aaaabbbbccccdddd"
        emit("ambient")
        (record,) = read_events(log)
        assert record["trace_id"] == "aaaabbbbccccdddd"
        assert record["span_id"] is None


class TestContexts:
    def test_nested_context_inherits_trace_and_merges_attrs(self, tmp_path):
        log = tmp_path / "events.jsonl"
        configure_event_log(log)
        with event_context("campaign", trace_id="1111222233334444"):
            with event_context("unit", unit=0, attempt=1) as effective:
                assert effective == "1111222233334444"
                emit("unit_start")
        (record,) = read_events(log)
        assert record["trace_id"] == "1111222233334444"
        assert record["unit"] == 0
        assert record["attempt"] == 1

    def test_span_ids_are_deterministic(self):
        with event_context("unit", trace_id="ab" * 8, unit=2):
            first = events_mod._contexts.stack[-1][1]
        with event_context("unit", trace_id="ab" * 8, unit=2):
            second = events_mod._contexts.stack[-1][1]
        with event_context("unit", trace_id="ab" * 8, unit=3):
            third = events_mod._contexts.stack[-1][1]
        assert first == second
        assert first != third

    def test_context_pops_on_exception(self):
        with pytest.raises(RuntimeError):
            with event_context("unit", trace_id="cd" * 8):
                raise RuntimeError("boom")
        assert events_mod._contexts.stack == []
        assert current_trace_id() is None

    def test_threads_carry_independent_contexts(self, tmp_path):
        log = tmp_path / "events.jsonl"
        configure_event_log(log)
        barrier = threading.Barrier(2)

        def work(trace_id: str) -> None:
            with event_context("request", trace_id=trace_id):
                barrier.wait()  # both contexts open at once
                emit("request")

        threads = [threading.Thread(target=work, args=(f"{i:016x}",))
                   for i in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        traces = sorted(r["trace_id"] for r in read_events(log))
        assert traces == [f"{1:016x}", f"{2:016x}"]


class TestPropagationPlumbing:
    def test_configure_exports_and_clears_env(self, tmp_path):
        log = tmp_path / "events.jsonl"
        configure_event_log(log)
        assert os.environ[LOG_ENV] == str(log)
        configure_event_log(None)
        assert LOG_ENV not in os.environ

    def test_worker_autoconfigures_from_env(self, tmp_path):
        """What a spawn worker does: no explicit configure, just the
        inherited environment."""
        log = tmp_path / "worker.jsonl"
        os.environ[LOG_ENV] = str(log)
        os.environ[TRACE_ENV] = "feedbeeffeedbeef"
        try:
            emit("worker_event", unit=7)
        finally:
            os.environ.pop(LOG_ENV, None)
        (record,) = read_events(log)
        assert record["trace_id"] == "feedbeeffeedbeef"
        assert record["unit"] == 7

    def test_stderr_target(self, capsys):
        configure_event_log("-")
        emit("to_stderr")
        configure_event_log(None)
        err = capsys.readouterr().err
        assert '"event":"to_stderr"' in err


class TestReader:
    def test_torn_tail_truncates(self, tmp_path):
        log = tmp_path / "events.jsonl"
        configure_event_log(log)
        emit("one")
        emit("two")
        configure_event_log(None)
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"ts": 1.0, "event": "torn"')  # no newline, torn
        records = read_events(log)
        assert [r["event"] for r in records] == ["one", "two"]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_events(tmp_path / "absent.jsonl") == []

    def test_normalized_event_strips_measurements(self):
        record = {"ts": 1.0, "pid": 42, "duration_s": 0.5,
                  "event": "attempt", "trace_id": "ab" * 8, "unit": 1}
        normalized = normalized_event(record)
        assert normalized == {"event": "attempt", "trace_id": "ab" * 8,
                              "unit": 1}
        for key in MEASUREMENT_EVENT_KEYS:
            assert key not in normalized
