"""Tests for time-sliced stats and co-occurrence analysis."""

import numpy as np
import pytest

from repro.core.categorize import DiagnosedOutcome, DiagnosedRun
from repro.core.correlation import cooccurrence
from repro.core.filtering import ErrorCluster
from repro.core.ingest import RunView
from repro.core.windows import sliced_stats
from repro.errors import AnalysisError
from repro.faults.taxonomy import ErrorCategory
from repro.util.intervals import Interval
from repro.util.timeutil import DAY


def view(apid, end_s, *, nodes=2, hours=1.0):
    return RunView(apid=apid, batch_id="1.bw", user="u", cmd="app",
                   nids=tuple(range(nodes)), start_s=end_s - hours * 3600,
                   end_s=end_s, exit_code=0, exit_signal=0,
                   launch_error=False, node_type="XE", gemini_vertices=())


def diag(apid, end_s, outcome=DiagnosedOutcome.SUCCESS):
    return DiagnosedRun(run=view(apid, end_s), outcome=outcome)


def cluster(cid, category, start):
    return ErrorCluster(cluster_id=cid, category=category, start_s=start,
                        end_s=start + 10, components=("c0-0c0s0n0",),
                        record_count=1)


class TestSlicedStats:
    def test_slicing_counts(self):
        window = Interval(0, 90 * DAY)
        diagnosed = [diag(1, 10 * DAY), diag(2, 40 * DAY),
                     diag(3, 70 * DAY, DiagnosedOutcome.SYSTEM)]
        clusters = [cluster(0, ErrorCategory.MCE, 5 * DAY),
                    cluster(1, ErrorCategory.DRAM_CORRECTABLE, 6 * DAY)]
        stats = sliced_stats(diagnosed, clusters, window, slice_days=30.0)
        assert len(stats) == 3
        assert [s.runs for s in stats] == [1, 1, 1]
        assert stats[2].system_failures == 1
        # Benign cluster excluded from failure-cluster counts.
        assert stats[0].failure_clusters == 1

    def test_out_of_window_runs_ignored(self):
        window = Interval(0, 30 * DAY)
        diagnosed = [diag(1, 40 * DAY)]
        stats = sliced_stats(diagnosed, [], window)
        assert sum(s.runs for s in stats) == 0

    def test_share_computation(self):
        window = Interval(0, 30 * DAY)
        diagnosed = [diag(1, 1 * DAY), diag(2, 2 * DAY,
                                            DiagnosedOutcome.UNKNOWN)]
        stats = sliced_stats(diagnosed, [], window)
        assert stats[0].system_failure_share == pytest.approx(0.5)

    def test_bad_slice_days(self):
        with pytest.raises(AnalysisError):
            sliced_stats([], [], Interval(0, DAY), slice_days=0)

    def test_last_slice_clamped(self):
        window = Interval(0, 45 * DAY)
        stats = sliced_stats([], [], window, slice_days=30.0)
        assert stats[-1].window.end == 45 * DAY

    def test_run_ending_on_window_end_lands_in_final_slice(self):
        # Regression: the window is closed ([lo, hi], matching the serve
        # query contract), so a run whose end falls exactly on
        # ``window.end`` counts in the final slice -- it used to be
        # dropped entirely by an exclusive upper-bound check.
        window = Interval(0, 90 * DAY)
        diagnosed = [diag(1, 90 * DAY, DiagnosedOutcome.SYSTEM)]
        clusters = [cluster(0, ErrorCategory.MCE, 90 * DAY)]
        stats = sliced_stats(diagnosed, clusters, window, slice_days=30.0)
        assert sum(s.runs for s in stats) == 1
        assert stats[-1].runs == 1
        assert stats[-1].system_failures == 1
        assert stats[-1].failure_clusters == 1

    def test_slice_count_is_true_ceiling(self):
        # Regression: int(x + 0.999) under-counted when the fractional
        # part of duration/slice fell below 0.001 but above zero.
        barely_over = Interval(0, 30 * DAY + 1.0)
        assert len(sliced_stats([], [], barely_over, slice_days=30.0)) == 2
        exact = Interval(0, 60 * DAY)
        assert len(sliced_stats([], [], exact, slice_days=30.0)) == 2


class TestCooccurrence:
    def test_correlated_pair_high_lift(self):
        window = Interval(0, 100 * DAY)
        clusters = []
        cid = 0
        # MCE and NODE_HB always within 60 s of each other.
        for day in range(0, 100, 5):
            clusters.append(cluster(cid, ErrorCategory.MCE, day * DAY))
            cid += 1
            clusters.append(cluster(cid, ErrorCategory.NODE_HEARTBEAT,
                                    day * DAY + 60))
            cid += 1
        matrix = cooccurrence(clusters, window, correlation_window_s=600)
        count, lift = matrix.pair(ErrorCategory.MCE,
                                  ErrorCategory.NODE_HEARTBEAT)
        assert count == 20
        assert lift > 10

    def test_independent_pair_low_lift(self):
        window = Interval(0, 100 * DAY)
        clusters = []
        cid = 0
        for day in range(0, 100, 5):
            clusters.append(cluster(cid, ErrorCategory.MCE, day * DAY))
            cid += 1
            clusters.append(cluster(cid, ErrorCategory.LUSTRE_OSS,
                                    (day + 2.5) * DAY))
            cid += 1
        matrix = cooccurrence(clusters, window, correlation_window_s=600)
        count, _lift = matrix.pair(ErrorCategory.MCE,
                                   ErrorCategory.LUSTRE_OSS)
        assert count == 0

    def test_counts_symmetric(self):
        window = Interval(0, 10 * DAY)
        clusters = [cluster(0, ErrorCategory.MCE, 100.0),
                    cluster(1, ErrorCategory.GEMINI_LINK, 200.0)]
        matrix = cooccurrence(clusters, window)
        assert np.array_equal(matrix.counts, matrix.counts.T)

    def test_top_pairs_sorted_by_lift(self):
        window = Interval(0, 100 * DAY)
        clusters = []
        cid = 0
        for day in range(0, 100, 10):
            for cat in (ErrorCategory.MCE, ErrorCategory.NODE_HEARTBEAT,
                        ErrorCategory.KERNEL_PANIC):
                clusters.append(cluster(cid, cat, day * DAY + cid))
                cid += 1
        matrix = cooccurrence(clusters, window, correlation_window_s=600)
        pairs = matrix.top_pairs()
        lifts = [lift for *_rest, lift in pairs]
        assert lifts == sorted(lifts, reverse=True)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            cooccurrence([], Interval(0, DAY))
