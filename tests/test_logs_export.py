"""Tests for CSV/JSONL exporters."""

import csv
import json

from repro.logs.export import (
    export_clusters_csv,
    export_runs_csv,
    export_runs_jsonl,
)


class TestExportRuns:
    def test_csv_roundtrip(self, analysis, tmp_path):
        path = export_runs_csv(analysis.diagnosed, tmp_path / "runs.csv")
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(analysis.diagnosed)
        first = rows[0]
        assert first["outcome"] in ("success", "user", "walltime", "system",
                                    "unknown")
        assert int(first["nodes"]) >= 1

    def test_jsonl_roundtrip(self, analysis, tmp_path):
        path = export_runs_jsonl(analysis.diagnosed, tmp_path / "runs.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(analysis.diagnosed)
        record = json.loads(lines[0])
        assert "apid" in record and "outcome" in record

    def test_csv_and_jsonl_agree(self, analysis, tmp_path):
        csv_path = export_runs_csv(analysis.diagnosed, tmp_path / "a.csv")
        jsonl_path = export_runs_jsonl(analysis.diagnosed, tmp_path / "a.jsonl")
        with open(csv_path) as handle:
            csv_apids = [int(r["apid"]) for r in csv.DictReader(handle)]
        jsonl_apids = [json.loads(line)["apid"]
                       for line in jsonl_path.read_text().splitlines()]
        assert csv_apids == jsonl_apids


class TestExportClusters:
    def test_cluster_csv(self, analysis, tmp_path):
        path = export_clusters_csv(analysis.clusters, tmp_path / "c.csv")
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(analysis.clusters)
        if rows:
            assert int(rows[0]["record_count"]) >= 1
            assert float(rows[0]["duration_s"]) >= 0
