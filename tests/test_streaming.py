"""Sharded streaming analysis: parity with in-memory, boundary safety.

The contract under test is exact equality, not approximation: the
streamed path must produce byte-identical products to the in-memory
pipeline for any shard count and any worker count, including when shard
boundaries fall inside runs or error clusters.
"""

from __future__ import annotations

import json
import math
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.core import LogDiver
from repro.core.sharding import analyze_streamed, plan_shards
from repro.errors import AnalysisError
from repro.faults.corruptor import CorruptionConfig, corrupt_bundle
from repro.faults.propagation import Symptom
from repro.faults.taxonomy import ErrorCategory
from repro.logs.bundle import (
    index_bundle_shards,
    iter_slice_lines,
    manifest_window,
    read_bundle,
    read_manifest,
)
from repro.logs.errorlogs import write_console_line
from repro.logs.nids import encode_nids
from repro.util.intervals import Interval
from repro.util.timeutil import Epoch


def dicts_equal(a: dict, b: dict) -> bool:
    """Dict equality where NaN == NaN (summaries carry NaN growth
    factors on sparse curves, and NaN != NaN defeats plain ==)."""
    if a.keys() != b.keys():
        return False
    for key in a:
        va, vb = a[key], b[key]
        both_nan = (isinstance(va, float) and isinstance(vb, float)
                    and math.isnan(va) and math.isnan(vb))
        if not (both_nan or va == vb):
            return False
    return True


def assert_streamed_matches(mem, streamed) -> None:
    """Every product both paths produce must agree exactly."""
    assert dicts_equal(streamed.summary(), mem.summary())
    assert streamed.n_runs == len(mem.diagnosed)
    assert streamed.breakdown == mem.breakdown
    assert streamed.causes == mem.causes
    assert streamed.waste == mem.waste
    assert streamed.mtbf_all == mem.mtbf_all
    assert streamed.mtbf_xe == mem.mtbf_xe
    assert streamed.mtbf_xk == mem.mtbf_xk
    assert dicts_equal(streamed.system_mtbf_h, mem.system_mtbf_h)
    assert streamed.xe_curve == mem.xe_curve
    assert streamed.xk_curve == mem.xk_curve
    assert streamed.clusters == mem.clusters
    assert streamed.filter_stats == mem.filter_stats
    assert streamed.unclassified_records == mem.unclassified_records
    assert streamed.window == mem.window
    assert streamed.ingest.as_dict() == mem.ingest.as_dict()


# -- parity on the shared session bundle -------------------------------------

class TestStreamedParity:
    def test_matches_in_memory(self, bundle_dir, analysis):
        streamed = analyze_streamed(bundle_dir, shards=8)
        assert_streamed_matches(analysis, streamed)
        assert streamed.shards == 8

    def test_single_shard_matches_in_memory(self, bundle_dir, analysis):
        streamed = analyze_streamed(bundle_dir, shards=1)
        assert_streamed_matches(analysis, streamed)
        assert streamed.boundary_runs == 0

    def test_serial_matches_parallel_workers(self, bundle_dir):
        serial = analyze_streamed(bundle_dir, shards=6, jobs=1)
        parallel = analyze_streamed(bundle_dir, shards=6, jobs=2)
        assert dicts_equal(parallel.summary(), serial.summary())
        assert parallel.breakdown == serial.breakdown
        assert parallel.clusters == serial.clusters
        assert parallel.ingest.as_dict() == serial.ingest.as_dict()
        assert parallel.boundary_runs == serial.boundary_runs

    def test_shard_count_does_not_change_results(self, bundle_dir):
        few = analyze_streamed(bundle_dir, shards=2)
        many = analyze_streamed(bundle_dir, shards=13)
        assert dicts_equal(few.summary(), many.summary())
        assert few.breakdown == many.breakdown
        assert few.clusters == many.clusters

    def test_lenient_parity_on_corrupted_bundle(self, bundle_dir, tmp_path):
        # Skew/reorder defects would break the sorted-file assumption
        # the shard index documents, so inject only line-local damage.
        config = CorruptionConfig(truncate_rate=0.004, garble_rate=0.004,
                                  drop_rate=0.002)
        corrupted = tmp_path / "corrupted"
        corrupt_bundle(bundle_dir, corrupted, config, seed=42)
        mem = LogDiver().analyze(read_bundle(corrupted, strict=False))
        streamed = analyze_streamed(corrupted, shards=5, strict=False)
        assert_streamed_matches(mem, streamed)
        assert streamed.ingest.total_quarantined > 0

    def test_zero_shards_rejected(self, bundle_dir):
        with pytest.raises(AnalysisError):
            analyze_streamed(bundle_dir, shards=0)


# -- the byte-offset shard index ---------------------------------------------

class TestShardIndex:
    def test_slices_cover_every_line(self, bundle_dir):
        manifest, epoch = read_manifest(bundle_dir)
        plan = plan_shards(bundle_dir, 7, manifest=manifest, epoch=epoch)
        for name in ("syslog.log", "apsys.log", "torque.log"):
            path = Path(bundle_dir) / name
            whole = path.read_text().splitlines()
            pieces, linenos = [], []
            for sl in plan.slices[name]:
                lines = list(iter_slice_lines(path, sl))
                pieces.extend(line.rstrip("\n") for line in lines)
                linenos.append((sl.lineno_lo, len(lines)))
            assert pieces == whole
            # Line numbers chain: each slice starts where the previous
            # one ended, so quarantine reports cite true file lines.
            expect = 1
            for lineno_lo, count in linenos:
                assert lineno_lo == expect
                expect += count

    def test_slices_are_contiguous_bytes(self, bundle_dir):
        manifest, epoch = read_manifest(bundle_dir)
        boundaries = plan_shards(bundle_dir, 4, manifest=manifest,
                                 epoch=epoch).boundaries
        slices = index_bundle_shards(bundle_dir, boundaries, epoch=epoch)
        path = Path(bundle_dir) / "apsys.log"
        offset = 0
        for sl in slices["apsys.log"]:
            assert sl.byte_lo == offset
            offset = sl.byte_hi
        assert offset == path.stat().st_size


# -- property: boundary placement never changes the outcome -------------------

def _write_bundle(directory: Path, runs, errors) -> None:
    """A minimal hand-built bundle: 16 XE nodes, apsys runs, console
    errors.  No manifest window -- exercises the observed-span fallback
    on both paths."""
    epoch = Epoch()
    with open(directory / "nodemap.txt", "w") as handle:
        for nid in range(16):
            handle.write(f"nid{nid} c0-0c0s{nid // 4}n{nid % 4} XE "
                         f"gemini={nid // 4}\n")
    alps_lines = []
    for apid, (start, duration, node_lo, width, code, sig) in enumerate(runs):
        nids = encode_nids(range(node_lo, node_lo + width))
        head = (f"apid={apid} kind={{kind}} batch_id={apid}.bw "
                f"user=user{apid % 3:04d} cmd=a.out nids={nids}")
        alps_lines.append(
            (start, f"{epoch.format_iso(start)} apsys "
             + head.format(kind="start")))
        alps_lines.append(
            (start + duration, f"{epoch.format_iso(start + duration)} apsys "
             + head.format(kind="end")
             + f" exit_code={code} exit_signal={sig}"))
    alps_lines.sort(key=lambda pair: pair[0])
    with open(directory / "apsys.log", "w") as handle:
        for _, line in alps_lines:
            handle.write(line + "\n")
    console = sorted(
        (time, write_console_line(
            Symptom(time=float(time),
                    component=f"c0-0c0s{nid // 4}n{nid % 4}",
                    category=ErrorCategory.KERNEL_PANIC, event_id=event_id),
            epoch))
        for event_id, (time, nid) in enumerate(errors))
    with open(directory / "console.log", "w") as handle:
        for _, line in console:
            handle.write(line + "\n")
    manifest = {"format": "repro-logbundle/1",
                "epoch_start": epoch.start.isoformat()}
    with open(directory / "manifest.json", "w") as handle:
        json.dump(manifest, handle)


_run_strategy = st.tuples(
    st.integers(min_value=0, max_value=30_000),     # start second
    st.integers(min_value=60, max_value=7_200),     # duration
    st.integers(min_value=0, max_value=12),         # first node
    st.integers(min_value=1, max_value=4),          # width
    st.sampled_from([0, 0, 1, 271]),                # exit code
    st.sampled_from([0, 0, 9, 11]),                 # exit signal
)
_error_strategy = st.tuples(
    st.integers(min_value=0, max_value=36_000),     # second
    st.integers(min_value=0, max_value=15),         # nid
)


class TestShardBoundaryProperty:
    @settings(deadline=None, max_examples=12)
    @given(runs=st.lists(_run_strategy, min_size=1, max_size=10),
           errors=st.lists(_error_strategy, max_size=8),
           shards=st.integers(min_value=1, max_value=6))
    def test_boundaries_never_change_outcomes(self, runs, errors, shards):
        with tempfile.TemporaryDirectory() as raw:
            directory = Path(raw)
            _write_bundle(directory, runs, errors)
            mem = LogDiver().analyze(read_bundle(directory))
            streamed = analyze_streamed(directory, shards=shards)
            assert streamed.breakdown.counts == mem.breakdown.counts
            assert streamed.causes == mem.causes
            assert streamed.n_runs == len(mem.diagnosed)
            assert dicts_equal(streamed.summary(), mem.summary())
            assert streamed.clusters == mem.clusters
            assert streamed.window == mem.window


# -- satellite a: degenerate manifest windows ---------------------------------

class TestWindowFallback:
    def test_manifest_window_parses_good_window(self):
        assert manifest_window({"window_s": [0.0, 100.0]}) == \
            Interval(0.0, 100.0)

    @pytest.mark.parametrize("manifest", [
        {},                                # missing entirely
        {"window_s": None},
        {"window_s": [0.0, 0.0]},          # degenerate: empty span
        {"window_s": [100.0, 10.0]},       # inverted
        {"window_s": ["x", "y"]},          # garbage
        {"window_s": [5.0]},               # wrong arity
    ])
    def test_manifest_window_rejects_degenerate(self, manifest):
        assert manifest_window(manifest) is None

    def test_analysis_survives_missing_window(self):
        """A bundle whose manifest lacks window_s used to produce a
        zero-length window and crash system MTBF; it must now fall back
        to the observed record span."""
        runs = [(0, 3600, 0, 4, 0, 0), (7200, 3600, 4, 4, 1, 0)]
        errors = [(1800, 1)]
        with tempfile.TemporaryDirectory() as raw:
            directory = Path(raw)
            _write_bundle(directory, runs, errors)
            analysis = LogDiver().analyze(read_bundle(directory))
            assert analysis.window.end > analysis.window.start
            assert analysis.window.start <= 0.0
            assert analysis.window.end >= 10_800.0
            # system MTBF is finite, not a division blow-up
            for hours in analysis.system_mtbf_h.values():
                assert hours > 0.0


# -- satellite b: growth anchors surfaced -------------------------------------

class TestGrowthAnchors:
    def test_summary_surfaces_anchor_buckets(self, analysis):
        summary = analysis.summary()
        for prefix, curve in (("xe", analysis.xe_curve),
                              ("xk", analysis.xk_curve)):
            anchors = curve.growth_anchors()
            flag = summary[f"{prefix}_growth_paper_anchored"]
            assert flag in (0.0, 1.0)
            if anchors is None:
                assert math.isnan(
                    summary[f"{prefix}_growth_anchor_lo_nodes"])
            else:
                lo, hi = anchors
                assert summary[f"{prefix}_growth_anchor_lo_nodes"] == \
                    float(lo.scale_lo)
                assert summary[f"{prefix}_growth_anchor_hi_nodes"] == \
                    float(hi.scale_hi)
                assert (flag == 1.0) == curve.paper_anchored()

    def test_interior_anchoring_is_not_paper_anchored(self, analysis):
        """When the extreme buckets are empty the growth factor anchors
        on interior buckets; paper_anchored() must say so instead of
        letting the oracle compare apples to oranges."""
        curve = analysis.xe_curve
        anchors = curve.growth_anchors()
        if anchors is None:
            pytest.skip("curve too sparse to anchor at all")
        lo, hi = anchors
        full_span = (lo.scale_lo == curve.points[0].scale_lo
                     and hi.scale_hi == curve.points[-1].scale_hi
                     and lo.probability > 0.0)
        assert curve.paper_anchored() == full_span


class TestOracleGating:
    def test_gated_band_neither_passes_nor_fails(self):
        from repro.validation.oracle import OracleBand

        band = OracleBand("xe_curve_growth", 2.0, 200.0, False,
                          "growth", gate_key="xe_growth_paper_anchored")
        gated = band.check(1e6, 0.0)
        assert gated.gated and not gated.ok
        assert gated.status == "n/a (not comparable)"
        live = band.check(1e6, 1.0)
        assert not live.gated and not live.ok
        missing_gate = band.check(50.0, None)
        assert not missing_gate.gated and missing_gate.ok

    def test_report_ignores_gated_required_band(self):
        from repro.validation.oracle import OracleBand, OracleReport

        band = OracleBand("k", 0.0, 1.0, True, "d", gate_key="g")
        report = OracleReport(checks=(band.check(99.0, 0.0),))
        assert report.passed
        assert report.failures == []
        assert "n/a (not comparable)" in report.render()


# -- satellite c: unpaired ends and censored starts ---------------------------

class TestUnpairedRuns:
    def _bundle_with_orphans(self, directory: Path) -> None:
        epoch = Epoch()
        with open(directory / "nodemap.txt", "w") as handle:
            for nid in range(8):
                handle.write(f"nid{nid} c0-0c0s{nid // 4}n{nid % 4} XE "
                             f"gemini=0\n")
        lines = [
            # end without start: apid=1 ends at t=100
            (100, "apid=1 kind=end batch_id=1.bw user=user0001 cmd=a.out "
                  "nids=0-3 exit_code=0 exit_signal=0"),
            # a complete run so analysis has something to diagnose
            (200, "apid=2 kind=start batch_id=2.bw user=user0001 "
                  "cmd=a.out nids=4-7"),
            (800, "apid=2 kind=end batch_id=2.bw user=user0001 cmd=a.out "
                  "nids=4-7 exit_code=0 exit_signal=0"),
            # start without end: apid=3 never finishes (censored)
            (900, "apid=3 kind=start batch_id=3.bw user=user0002 "
                  "cmd=a.out nids=0-3"),
        ]
        with open(directory / "apsys.log", "w") as handle:
            for time, payload in lines:
                handle.write(f"{epoch.format_iso(time)} apsys {payload}\n")
        manifest = {"format": "repro-logbundle/1",
                    "epoch_start": epoch.start.isoformat(),
                    "window_s": [0.0, 1000.0]}
        with open(directory / "manifest.json", "w") as handle:
            json.dump(manifest, handle)

    def test_in_memory_counts_orphans(self, tmp_path):
        self._bundle_with_orphans(tmp_path)
        analysis = LogDiver().analyze(read_bundle(tmp_path))
        assert analysis.ingest.unpaired_end_runs == 1
        assert analysis.ingest.censored_start_runs == 1
        # the unpaired end still becomes a (zero-elapsed) run; the
        # censored start does not
        assert len(analysis.diagnosed) == 2
        rendered = analysis.ingest.render()
        assert "end-without-start" in rendered and "censored" in rendered

    def test_streamed_counts_orphans_identically(self, tmp_path):
        self._bundle_with_orphans(tmp_path)
        mem = LogDiver().analyze(read_bundle(tmp_path))
        for shards in (1, 3):
            streamed = analyze_streamed(tmp_path, shards=shards)
            assert streamed.ingest.unpaired_end_runs == 1
            assert streamed.ingest.censored_start_runs == 1
            assert streamed.n_runs == len(mem.diagnosed)
            assert dicts_equal(streamed.summary(), mem.summary())


# -- the CLI entry point ------------------------------------------------------

class TestStreamCli:
    def test_stream_analyze_runs(self, bundle_dir, capsys):
        code = main(["analyze", str(bundle_dir), "--stream",
                     "--shards", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "streamed analyze" in out
        assert "peak RSS" in out

    def test_stream_skips_per_run_tables(self, bundle_dir, capsys):
        code = main(["analyze", str(bundle_dir), "--stream",
                     "--shards", "2", "--tables", "workload,outcomes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipping per-run tables" in out
        assert "workload" in out

    def test_rss_budget_breach_exits_3(self, bundle_dir, capsys):
        code = main(["analyze", str(bundle_dir), "--stream",
                     "--shards", "2", "--rss-budget-mb", "0.001"])
        assert code == 3
        assert "exceeds the" in capsys.readouterr().out

    def test_rss_budget_generous_passes(self, bundle_dir):
        code = main(["analyze", str(bundle_dir), "--stream",
                     "--shards", "2", "--rss-budget-mb", "100000"])
        assert code == 0
