"""Tests for the per-source log writers and parsers (round-trips)."""

import pytest

from repro.errors import LogFormatError
from repro.faults.propagation import Symptom
from repro.faults.taxonomy import ErrorCategory
from repro.logs.alps import alps_run_lines, parse_alps_line
from repro.logs.errorlogs import (
    parse_console_line,
    parse_hwerr_line,
    parse_stream,
    parse_syslog_line,
    write_console_line,
    write_hwerr_line,
    write_syslog_line,
)
from repro.logs.torque import (
    format_walltime,
    parse_torque_line,
    parse_walltime,
    torque_job_lines,
)
from repro.machine.nodetypes import NodeType
from repro.util.timeutil import Epoch
from repro.workload.jobs import AppRunRecord, JobRecord, Outcome

EPOCH = Epoch()


def symptom(category=ErrorCategory.MCE, component="c1-2c0s3n1", time=12345.0,
            kind=0):
    return Symptom(time=time, component=component, category=category,
                   event_id=7, kind=kind)


class TestErrorLogRoundTrips:
    def test_syslog(self):
        line = write_syslog_line(symptom(), EPOCH)
        record = parse_syslog_line(line, EPOCH)
        assert record.time_s == 12345.0
        assert record.component == "c1-2c0s3n1"
        assert record.source == "syslog"

    def test_syslog_gpu_component_maps_to_host(self):
        line = write_syslog_line(
            symptom(ErrorCategory.GPU_DBE, "c1-2c0s3n1a0"), EPOCH)
        record = parse_syslog_line(line, EPOCH)
        # The syslog host is the node; the GPU id stays in the message.
        assert record.component == "c1-2c0s3n1"
        assert "c1-2c0s3n1a0" in record.message

    def test_hwerr(self):
        line = write_hwerr_line(symptom(ErrorCategory.GEMINI_LINK,
                                        "c1-2c0s3g0"), EPOCH)
        record = parse_hwerr_line(line, EPOCH)
        assert record.component == "c1-2c0s3g0"
        assert record.source == "hwerrlog"
        assert record.time_s == 12345.0

    def test_console(self):
        line = write_console_line(symptom(ErrorCategory.KERNEL_PANIC), EPOCH)
        record = parse_console_line(line, EPOCH)
        assert record.source == "console"
        assert "panic" in record.message.lower() or "Oops" in record.message \
            or "BUG" in record.message

    @pytest.mark.parametrize("parser", [parse_syslog_line, parse_hwerr_line,
                                        parse_console_line])
    def test_garbage_rejected(self, parser):
        with pytest.raises(LogFormatError):
            parser("complete garbage", EPOCH)

    def test_parse_stream_strict_raises_with_location(self):
        with pytest.raises(LogFormatError, match="hwerrlog:2"):
            list(parse_stream("hwerrlog",
                              [write_hwerr_line(symptom(), EPOCH), "junk"],
                              EPOCH))

    def test_parse_stream_lenient_skips(self):
        records = list(parse_stream(
            "hwerrlog", ["junk", write_hwerr_line(symptom(), EPOCH), ""],
            EPOCH, strict=False))
        assert len(records) == 1

    def test_unknown_stream_rejected(self):
        with pytest.raises(LogFormatError):
            list(parse_stream("nope", [], EPOCH))


class TestTorque:
    def make_job(self):
        return JobRecord(job_id=42, user="user0007", node_type=NodeType.XE,
                         node_ids=tuple(range(8)), submit_time=100.0,
                         start_time=200.0, end_time=7400.0,
                         walltime_s=14400.0, exit_status=0,
                         apids=(1, 2))

    def test_roundtrip_end_record(self):
        _start, end = torque_job_lines(self.make_job(), EPOCH)
        record = parse_torque_line(end, EPOCH)
        assert record.kind == "E"
        assert record.job_id == "42.bw"
        assert record.user == "user0007"
        assert record.nodes == 8
        assert record.exec_host_nids == tuple(range(8))
        assert record.exit_status == 0
        assert record.end_s == 7400.0

    def test_start_record_has_no_exit(self):
        start, _end = torque_job_lines(self.make_job(), EPOCH)
        record = parse_torque_line(start, EPOCH)
        assert record.kind == "S"
        assert record.exit_status is None
        assert record.end_s is None

    def test_walltime_text_roundtrip(self):
        for seconds in (0.0, 59.0, 3600.0, 48 * 3600.0, 100 * 3600.0 + 61):
            assert parse_walltime(format_walltime(seconds)) == round(seconds)

    def test_bad_walltime(self):
        with pytest.raises(LogFormatError):
            parse_walltime("12:00")

    def test_garbage_line(self):
        with pytest.raises(LogFormatError):
            parse_torque_line("not a torque line", EPOCH)

    def test_missing_field(self):
        line = "04/01/2013 00:03:20;E;1.bw;user=u"
        with pytest.raises(LogFormatError):
            parse_torque_line(line, EPOCH)


class TestAlps:
    def make_run(self, outcome=Outcome.COMPLETED, exit_code=0):
        return AppRunRecord(apid=9, job_id=3, app_name="NAMD",
                            node_type=NodeType.XE,
                            node_ids=tuple(range(128)), start=500.0,
                            end=4100.0, outcome=outcome, exit_code=exit_code)

    def test_roundtrip_completed(self):
        start_line, end_line = alps_run_lines(self.make_run(), EPOCH)
        start = parse_alps_line(start_line, EPOCH)
        end = parse_alps_line(end_line, EPOCH)
        assert start.kind == "start" and end.kind == "end"
        assert start.apid == end.apid == 9
        assert end.exit_code == 0 and end.exit_signal == 0
        assert end.nids == tuple(range(128))
        assert start.cmd == "namd2"

    def test_system_kill_shows_signal(self):
        run = self.make_run(Outcome.SYSTEM_FAILURE, exit_code=137)
        _start, end_line = alps_run_lines(run, EPOCH)
        end = parse_alps_line(end_line, EPOCH)
        assert end.exit_code == 0
        assert end.exit_signal == 9

    def test_user_segfault_shows_signal(self):
        run = self.make_run(Outcome.USER_FAILURE, exit_code=139)
        _start, end_line = alps_run_lines(run, EPOCH)
        end = parse_alps_line(end_line, EPOCH)
        assert end.exit_signal == 11

    def test_walltime_kill_code_preserved(self):
        run = self.make_run(Outcome.WALLTIME, exit_code=271)
        _start, end_line = alps_run_lines(run, EPOCH)
        end = parse_alps_line(end_line, EPOCH)
        assert end.exit_code == 271
        assert end.exit_signal == 0

    def test_launch_failure_single_error_line(self):
        run = AppRunRecord(apid=9, job_id=3, app_name="VPIC",
                           node_type=NodeType.XE, node_ids=(0, 1),
                           start=500.0, end=500.0,
                           outcome=Outcome.LAUNCH_FAILURE, exit_code=1)
        lines = alps_run_lines(run, EPOCH)
        assert len(lines) == 1
        record = parse_alps_line(lines[0], EPOCH)
        assert record.kind == "error"
        assert "placement error" in record.message

    def test_garbage_rejected(self):
        with pytest.raises(LogFormatError):
            parse_alps_line("garbage", EPOCH)

    def test_bad_kind_rejected(self):
        line = ("2013-04-01T00:08:20 apsys apid=9 kind=banana batch_id=3.bw "
                "user=u cmd=x nids=0")
        with pytest.raises(LogFormatError):
            parse_alps_line(line, EPOCH)
